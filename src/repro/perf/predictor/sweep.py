"""Predictor-triaged design-space exploration.

:func:`triage_design_sweep` is the fast tier in action: generate
candidate design points around a base core, predict model cycles for
**every** candidate from the feature matrix (one vectorized
``predict`` call — microseconds per candidate), then simulate only the
shortlist the triage policy keeps (top-K plus the epsilon near-tie
window) through the ordinary event-engine path.

``validate=True`` additionally simulates *every* candidate and emits a
``predicted_vs_simulated`` gating report: per-candidate relative error,
whether the true top-5 designs were all in the shortlist, and the
measured end-to-end speedup of triage over simulate-everything.  Both
legs run cold — the in-memory compile memo tiers are cleared between
them — so the speedup is honest rather than a cache artifact.

The predictor never produces a published number: every figure a triaged
sweep reports for a *kept* candidate is the event engine's own cycle
count, and the skipped candidates are reported as predictions, clearly
labelled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...bench.triage import shortlist_indices
from ...config.core_configs import CoreConfig, core_config_by_name
from .dataset import design_point_variants
from .features import candidate_feature_matrix, config_feature_columns
from .model import CyclePredictor, mape, p95_relative_error
from .settings import predict_epsilon, predict_top_k

__all__ = ["TriageSweepReport", "triage_design_sweep", "clear_memo_tiers"]


def clear_memo_tiers() -> None:
    """Drop every in-memory compile/summary memo tier.

    Used between the timed legs of a validation run so both start cold;
    the persistent on-disk cache is governed separately by
    ``REPRO_CACHE``.
    """
    from ...compiler import lowering
    from ...compiler.graph_engine import GraphEngine
    from ...core import engine as engine_mod

    GraphEngine._GLOBAL_CACHE.clear()
    GraphEngine._GLOBAL_MODEL_CACHE.clear()
    lowering.clear_lowering_memo()
    engine_mod._SUMMARY_MEMO.clear()


def _simulate_job(job: Tuple[str, dict, CoreConfig]) -> float:
    """Sweep worker: total simulated model cycles on one design point."""
    from ...compiler import GraphEngine
    from ...models import build_model

    model_name, kwargs, config = job
    graph = build_model(model_name, **kwargs)
    compiled = GraphEngine(config).compile_graph(graph)
    return float(sum(layer.cycles for layer in compiled.layers))


@dataclass
class TriageSweepReport:
    """Everything a triaged DSE run decided, predicted, and measured."""

    model: str
    base_core: str
    candidates: List[str]            # config names, job order
    predicted: List[float]           # predicted model cycles per candidate
    shortlist: List[int]             # simulated candidate indices
    simulated: Dict[int, float]      # candidate index -> simulated cycles
    top_k: int
    epsilon: float
    best_index: int                  # argmin of simulated shortlist cycles
    predict_seconds: float = 0.0
    triage_seconds: float = 0.0      # features + predict + shortlist sim
    # validate=True only:
    full_sim_seconds: Optional[float] = None
    full_simulated: Optional[List[float]] = None
    gate: Dict[str, object] = field(default_factory=dict)

    @property
    def best_config(self) -> str:
        return self.candidates[self.best_index]

    @property
    def best_cycles(self) -> float:
        return self.simulated[self.best_index]

    @property
    def speedup(self) -> Optional[float]:
        if self.full_sim_seconds is None or self.triage_seconds <= 0:
            return None
        return self.full_sim_seconds / self.triage_seconds

    def rows(self) -> List[Dict[str, object]]:
        """Per-candidate report rows (predicted vs simulated where known)."""
        out: List[Dict[str, object]] = []
        for i, name in enumerate(self.candidates):
            sim = self.simulated.get(i)
            if sim is None and self.full_simulated is not None:
                sim = self.full_simulated[i]
            row: Dict[str, object] = {
                "config": name,
                "predicted_cycles": round(self.predicted[i], 1),
                "simulated_cycles": sim,
                "in_shortlist": i in set(self.shortlist),
            }
            if sim:
                row["rel_error"] = round(
                    abs(self.predicted[i] - sim) / sim, 4)
            out.append(row)
        return out


def triage_design_sweep(predictor: CyclePredictor,
                        model: str = "gesture",
                        kwargs: Optional[dict] = None,
                        base_core: str = "ascend-lite",
                        n_candidates: int = 200,
                        top_k: Optional[int] = None,
                        epsilon: Optional[float] = None,
                        seed: int = 1,
                        validate: bool = False,
                        max_workers: Optional[int] = None
                        ) -> TriageSweepReport:
    """Triage ``n_candidates`` design points for ``model``; see module doc.

    The candidate generator excludes the base core itself (it is the
    anchor being perturbed, not a candidate) and never filters by dtype:
    the corpus models here must be supported on every variant, which
    holds because variants keep the base cube's k/n and dtypes.
    """
    from ...compiler.graph_engine import _im2col_scales
    from ...models import build_model

    kwargs = kwargs or {}
    top_k = top_k if top_k is not None else predict_top_k()
    epsilon = epsilon if epsilon is not None else predict_epsilon()
    base = core_config_by_name(base_core)
    configs = design_point_variants(base, n_candidates, seed=seed,
                                    include_base=False)
    graph = build_model(model, **kwargs)
    pairs = list(graph.grouped_workloads())
    scales = _im2col_scales(graph)

    # -- fast tier: one batched feature matrix, one model call ----------------
    triage_start = time.perf_counter()
    stack = candidate_feature_matrix(pairs, config_feature_columns(configs),
                                     scales)
    predicted = predictor.predict_model_cycles(stack, len(configs))
    predict_seconds = time.perf_counter() - triage_start

    keep = shortlist_indices([float(p) for p in predicted], top_k, epsilon)

    # -- slow tier: event engine on the shortlist only ------------------------
    from ...bench.runner import run_sweep

    jobs = [(model, kwargs, configs[i]) for i in keep]
    shortlist_cycles = run_sweep(jobs, _simulate_job, max_workers=max_workers)
    triage_seconds = time.perf_counter() - triage_start
    simulated = {i: float(c) for i, c in zip(keep, shortlist_cycles)}
    best_index = min(keep, key=lambda i: (simulated[i], i))

    report = TriageSweepReport(
        model=model,
        base_core=base_core,
        candidates=[c.name for c in configs],
        predicted=[float(p) for p in predicted],
        shortlist=keep,
        simulated=simulated,
        top_k=top_k,
        epsilon=epsilon,
        best_index=best_index,
        predict_seconds=predict_seconds,
        triage_seconds=triage_seconds,
    )
    if validate:
        _validate(report, model, kwargs, configs, max_workers)
    return report


def _validate(report: TriageSweepReport, model: str, kwargs: dict,
              configs: Sequence[CoreConfig],
              max_workers: Optional[int]) -> None:
    """Full-simulation leg + the ``predicted_vs_simulated`` gate."""
    from ...bench.runner import run_sweep

    # Both legs cold: the triage leg above already paid its compiles, so
    # drop the memo tiers before timing the full sweep.
    clear_memo_tiers()
    full_start = time.perf_counter()
    full = run_sweep([(model, kwargs, c) for c in configs], _simulate_job,
                     max_workers=max_workers)
    full_seconds = time.perf_counter() - full_start
    full = [float(c) for c in full]
    report.full_sim_seconds = full_seconds
    report.full_simulated = full

    order = sorted(range(len(full)), key=lambda i: (full[i], i))
    true_top5 = order[:5]
    shortlist = set(report.shortlist)
    # The triage contract: shortlist simulation equals full simulation
    # for every kept candidate (same engine, same inputs).
    mismatches = [i for i in report.shortlist
                  if report.simulated[i] != full[i]]
    actual = np.asarray(full)
    predicted = np.asarray(report.predicted)
    report.gate = {
        "candidates": len(configs),
        "shortlist": len(report.shortlist),
        "top5_reproduced": all(i in shortlist for i in true_top5),
        "true_top5": [report.candidates[i] for i in true_top5],
        "best_matches_full": report.best_index == order[0],
        "shortlist_sim_mismatches": len(mismatches),
        "mape": mape(actual, predicted),
        "p95": p95_relative_error(actual, predicted),
        "triage_seconds": round(report.triage_seconds, 4),
        "full_sim_seconds": round(full_seconds, 4),
        "speedup": (round(full_seconds / report.triage_seconds, 2)
                    if report.triage_seconds > 0 else None),
    }
