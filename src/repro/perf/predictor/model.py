"""The pure-numpy cycle model: ridge + gradient-boosted stumps.

Cycle counts span five orders of magnitude across the zoo, so the model
works in log-cycles: a closed-form ridge regression over standardized
features captures the (log-linear) roofline backbone, then shallow
gradient-boosted decision stumps fit what the linear stage cannot —
threshold effects like "quantization waste only bites below one tile
row".  Everything is deterministic: the stump search scans features in
index order with strict-improvement tie-breaking and uses a fixed
quantile grid, so the same training matrix always yields the same model
(and therefore the same content key).

Serialization is plain JSON (:meth:`CyclePredictor.to_dict` /
``from_dict``): a loaded model predicts bit-identically to the fitted
one, which the artifact round-trip test pins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...errors import ConfigError
from .features import FEATURE_SCHEMA_VERSION

__all__ = ["CyclePredictor", "mape", "p95_relative_error"]

# Bump when the model layout / serialization payload changes.
MODEL_SCHEMA_VERSION = 1

# Quantile grid the stump search considers per feature.
_SPLIT_GRID = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
_MIN_LEAF = 8


def mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute percentage error (actual as denominator)."""
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.size == 0:
        return 0.0
    return float(np.mean(np.abs(predicted - actual)
                         / np.maximum(np.abs(actual), 1.0)))


def p95_relative_error(actual: np.ndarray, predicted: np.ndarray) -> float:
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.size == 0:
        return 0.0
    rel = np.abs(predicted - actual) / np.maximum(np.abs(actual), 1.0)
    return float(np.quantile(rel, 0.95))


@dataclass
class _Stump:
    """One boosted split on a standardized feature column."""

    feature: int
    threshold: float
    left: float     # mean residual where column <= threshold
    right: float


@dataclass
class CyclePredictor:
    """Ridge + boosted-stump regressor over the layer feature schema."""

    feature_schema: int = FEATURE_SCHEMA_VERSION
    n_features: int = 0
    lam: float = 0.1
    rounds: int = 150
    learning_rate: float = 0.2
    # Fitted state.
    mean: Optional[np.ndarray] = None
    scale: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    y_mean: float = 0.0
    stumps: List[_Stump] = field(default_factory=list)

    # -- fitting --------------------------------------------------------------

    def fit(self, X: np.ndarray, cycles: np.ndarray) -> "CyclePredictor":
        """Fit on raw feature rows and observed cycle counts."""
        X = np.asarray(X, dtype=np.float64)
        y = np.log(np.maximum(np.asarray(cycles, dtype=np.float64), 1.0))
        if X.ndim != 2 or len(X) != len(y) or len(y) == 0:
            raise ValueError("need a non-empty (n, f) matrix and n targets")
        self.n_features = X.shape[1]
        self.mean = X.mean(axis=0)
        self.scale = X.std(axis=0)
        self.scale[self.scale == 0] = 1.0
        Xs = (X - self.mean) / self.scale
        self.y_mean = float(y.mean())
        gram = Xs.T @ Xs + self.lam * np.eye(self.n_features)
        self.weights = np.linalg.solve(gram, Xs.T @ (y - self.y_mean))
        residual = y - (Xs @ self.weights + self.y_mean)
        self.stumps = self._fit_stumps(Xs, residual)
        return self

    def _fit_stumps(self, Xs: np.ndarray, residual: np.ndarray
                    ) -> List[_Stump]:
        """Greedy boosted stumps on the ridge residual, fully vectorized.

        Per feature the candidate thresholds are fixed quantiles of the
        training column; per round the best (feature, threshold) is the
        one with the largest SSE reduction, features scanned in index
        order with strict ``>`` so ties resolve deterministically.
        """
        n, n_feat = Xs.shape
        if n < 2 * _MIN_LEAF:
            return []
        # Per feature: sort order once; thresholds once.
        orders = np.argsort(Xs, axis=0, kind="stable")
        thresholds = np.quantile(Xs, _SPLIT_GRID, axis=0)  # (grid, feat)
        # Position of each threshold in the sorted column = left count.
        left_counts = np.empty((len(_SPLIT_GRID), n_feat), dtype=np.int64)
        for j in range(n_feat):
            col_sorted = Xs[orders[:, j], j]
            left_counts[:, j] = np.searchsorted(col_sorted,
                                                thresholds[:, j], side="right")
        valid = (left_counts >= _MIN_LEAF) & (left_counts <= n - _MIN_LEAF)

        r = residual.copy()
        stumps: List[_Stump] = []
        lr = self.learning_rate
        for _ in range(self.rounds):
            best_gain = 0.0
            best: Optional[Tuple[int, float, float, float]] = None
            total = float(r.sum())
            for j in range(n_feat):
                if not valid[:, j].any():
                    continue
                prefix = np.concatenate(
                    ([0.0], np.cumsum(r[orders[:, j]])))
                counts = left_counts[:, j]
                left_sum = prefix[counts]
                right_sum = total - left_sum
                left_n = counts
                right_n = n - counts
                with np.errstate(divide="ignore", invalid="ignore"):
                    gain = np.where(
                        valid[:, j],
                        left_sum ** 2 / np.maximum(left_n, 1)
                        + right_sum ** 2 / np.maximum(right_n, 1),
                        -np.inf)
                g = int(np.argmax(gain))
                if gain[g] > best_gain:
                    best_gain = float(gain[g])
                    best = (j, float(thresholds[g, j]),
                            float(left_sum[g] / left_n[g]),
                            float(right_sum[g] / right_n[g]))
            if best is None:
                break
            j, thr, left, right = best
            contrib = np.where(Xs[:, j] <= thr, lr * left, lr * right)
            r -= contrib
            stumps.append(_Stump(j, thr, left, right))
        return stumps

    # -- inference ------------------------------------------------------------

    def predict_log(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ValueError("predictor is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"feature width {X.shape[1]} != trained {self.n_features}")
        Xs = (X - self.mean) / self.scale
        log_pred = Xs @ self.weights + self.y_mean
        lr = self.learning_rate
        for stump in self.stumps:
            log_pred += np.where(Xs[:, stump.feature] <= stump.threshold,
                                 lr * stump.left, lr * stump.right)
        return log_pred

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted cycle counts (float, >= 1) for raw feature rows."""
        return np.exp(self.predict_log(X))

    def predict_model_cycles(self, stacked: np.ndarray,
                             n_candidates: int) -> np.ndarray:
        """Per-candidate predicted *model* cycles from a stacked matrix.

        ``stacked`` is the config-major candidate matrix that
        :func:`~repro.perf.predictor.features.candidate_feature_matrix`
        produces — ``n_candidates * n_layers`` feature rows.  One model
        call covers the whole batch; the per-layer predictions reshape
        to ``(n_candidates, n_layers)`` and sum per candidate, so the
        DSE hot loop touches no per-config python at all.
        """
        if n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        stacked = np.atleast_2d(np.asarray(stacked, dtype=np.float64))
        if stacked.shape[0] % n_candidates:
            raise ValueError(
                f"{stacked.shape[0]} feature rows do not divide into "
                f"{n_candidates} candidates")
        per_layer = self.predict(stacked)
        return per_layer.reshape(n_candidates, -1).sum(axis=1)

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        if self.weights is None:
            raise ValueError("predictor is not fitted")
        return {
            "schema": MODEL_SCHEMA_VERSION,
            "feature_schema": self.feature_schema,
            "n_features": self.n_features,
            "lam": self.lam,
            "rounds": self.rounds,
            "learning_rate": self.learning_rate,
            "mean": self.mean.tolist(),
            "scale": self.scale.tolist(),
            "weights": self.weights.tolist(),
            "y_mean": self.y_mean,
            "stumps": [[s.feature, s.threshold, s.left, s.right]
                       for s in self.stumps],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CyclePredictor":
        if payload.get("schema") != MODEL_SCHEMA_VERSION:
            raise ConfigError(
                f"predictor artifact schema {payload.get('schema')!r} does "
                f"not match this build's {MODEL_SCHEMA_VERSION}")
        if payload.get("feature_schema") != FEATURE_SCHEMA_VERSION:
            raise ConfigError(
                f"predictor feature schema {payload.get('feature_schema')!r} "
                f"does not match this build's {FEATURE_SCHEMA_VERSION}; "
                "retrain the model")
        predictor = cls(
            feature_schema=int(payload["feature_schema"]),
            n_features=int(payload["n_features"]),
            lam=float(payload["lam"]),
            rounds=int(payload["rounds"]),
            learning_rate=float(payload["learning_rate"]),
        )
        predictor.mean = np.asarray(payload["mean"], dtype=np.float64)
        predictor.scale = np.asarray(payload["scale"], dtype=np.float64)
        predictor.weights = np.asarray(payload["weights"], dtype=np.float64)
        predictor.y_mean = float(payload["y_mean"])
        predictor.stumps = [
            _Stump(int(f), float(t), float(l), float(r))
            for f, t, l, r in payload.get("stumps", [])
        ]
        return predictor

    def content_key(self) -> str:
        """sha256 over the canonical serialized model — the artifact's
        content-addressed cache key."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()
