"""Learned cycle predictor: the fast tier in front of the event engine.

NeuroScalar-style triage (PAPERS.md): a small pure-numpy regression
model — ridge on log-domain features plus gradient-boosted stumps on the
residual — trained on simulator runs predicts per-layer cycle counts
from workload structure and Table 5 design-point parameters at roughly
three orders of magnitude the event engine's speed.  Sweeps and
design-space exploration use it to rank candidate configurations and
fall back to the event engine only for a shortlist; published figures
and tables never consume predicted numbers (the predictor is triage
only, gated by the ``predicted_vs_simulated`` report).

Layout:

* :mod:`features` — deterministic per-layer feature extraction
  (schema-versioned; byte-identical across runs);
* :mod:`model` — the pure-numpy :class:`CyclePredictor`;
* :mod:`dataset` — training corpus x design-point variant collection
  through the parallel sweep harness and compile cache;
* :mod:`train` — training harness, artifact save/load with
  :class:`~repro.profiling.manifest.RunManifest` provenance;
* :mod:`sweep` — triaged design-point sweeps and the
  ``predicted_vs_simulated`` gate;
* :mod:`settings` — the ``REPRO_PREDICT*`` environment knobs;
* CLI: ``python -m repro.perf.predictor {train,sweep,smoke}``.
"""

from .features import (FEATURE_SCHEMA_VERSION, feature_names,
                       features_digest, layer_features,
                       model_feature_matrix, counters_feature_columns,
                       counters_feature_matrix)
from .model import CyclePredictor, mape, p95_relative_error
from .dataset import (Dataset, collect_dataset, design_point_variants,
                      FULL_CORPUS, SMOKE_CORPUS, workload_class)
from .train import (TrainReport, train_predictor, save_artifact,
                    load_artifact, try_load_artifact, default_artifact_path)
from .settings import (predict_enabled, predict_top_k, predict_epsilon)
from .sweep import TriageSweepReport, triage_design_sweep

__all__ = [
    "FEATURE_SCHEMA_VERSION",
    "feature_names",
    "features_digest",
    "layer_features",
    "model_feature_matrix",
    "counters_feature_columns",
    "counters_feature_matrix",
    "CyclePredictor",
    "mape",
    "p95_relative_error",
    "Dataset",
    "collect_dataset",
    "design_point_variants",
    "FULL_CORPUS",
    "SMOKE_CORPUS",
    "workload_class",
    "TrainReport",
    "train_predictor",
    "save_artifact",
    "load_artifact",
    "try_load_artifact",
    "default_artifact_path",
    "predict_enabled",
    "predict_top_k",
    "predict_epsilon",
    "TriageSweepReport",
    "triage_design_sweep",
]
