"""Seeded training harness for the cycle predictor.

``python -m repro.perf.predictor train`` drives this end to end:
collect the dataset (model zoo x design-point variants, through the
parallel sweep harness and the compile cache), hold out a seeded split,
fit the pure-numpy model, and report held-out MAPE / P95 relative error
overall and per workload class.  The artifact that lands in
``benchmarks/results/`` is self-describing JSON: schema versions, the
model payload, the metrics it was accepted with, a
:class:`~repro.profiling.manifest.RunManifest` provenance stamp, and a
content-addressed key over the model payload.

Everything downstream of a (corpus, cores, variants, seed, hyperparams)
tuple is deterministic, so retraining with the same recipe reproduces
the artifact byte for byte (modulo the provenance stamp's git/host
fields).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import ConfigError
from .dataset import Dataset, collect_dataset
from .features import FEATURE_SCHEMA_VERSION, features_digest
from .model import CyclePredictor, mape, p95_relative_error

__all__ = [
    "TrainReport",
    "train_predictor",
    "save_artifact",
    "load_artifact",
    "try_load_artifact",
    "default_artifact_path",
]

# Bump when the artifact JSON layout (not the model payload) changes.
ARTIFACT_SCHEMA_VERSION = 1

_ENV_MODEL_PATH = "REPRO_PREDICT_MODEL"
_DEFAULT_ARTIFACT = Path("benchmarks") / "results" / "predictor_model.json"


@dataclass
class TrainReport:
    """A fitted predictor plus the evaluation that justifies trusting it."""

    predictor: CyclePredictor
    metrics: Dict[str, object] = field(default_factory=dict)
    train_seconds: float = 0.0
    n_samples: int = 0
    n_train: int = 0
    n_holdout: int = 0
    dataset_digest: str = ""
    seed: int = 0

    @property
    def holdout_mape(self) -> float:
        return float(self.metrics["holdout"]["mape"])

    @property
    def holdout_p95(self) -> float:
        return float(self.metrics["holdout"]["p95"])


def _split(n: int, holdout: float, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded permutation split: (train indices, holdout indices)."""
    rng = np.random.default_rng([seed, n])
    order = rng.permutation(n)
    n_hold = max(1, int(round(n * holdout))) if n > 1 else 0
    return np.sort(order[n_hold:]), np.sort(order[:n_hold])


def _eval_block(actual: np.ndarray, predicted: np.ndarray) -> Dict[str, float]:
    return {
        "mape": mape(actual, predicted),
        "p95": p95_relative_error(actual, predicted),
        "samples": int(len(actual)),
    }


def _per_class(classes: Sequence[str], actual: np.ndarray,
               predicted: np.ndarray) -> Dict[str, Dict[str, float]]:
    by_class: Dict[str, Dict[str, float]] = {}
    for cls in sorted(set(classes)):
        mask = np.asarray([c == cls for c in classes])
        by_class[cls] = _eval_block(actual[mask], predicted[mask])
    return by_class


def train_predictor(seed: int = 0,
                    corpus: Optional[Sequence[Tuple[str, dict]]] = None,
                    cores: Optional[Sequence[str]] = None,
                    variants_per_core: int = 12,
                    holdout: float = 0.2,
                    lam: float = 0.1,
                    rounds: int = 150,
                    learning_rate: float = 0.2,
                    max_workers: Optional[int] = None,
                    dataset: Optional[Dataset] = None) -> TrainReport:
    """Collect (or reuse) a dataset, fit, and evaluate on the holdout.

    The reported model is **refit on all samples** after evaluation:
    the holdout numbers describe the recipe's generalization, and the
    shipped model should not waste a fifth of the data.  Pass
    ``dataset`` to skip collection (tests, resweeps).
    """
    if not 0.0 <= holdout < 1.0:
        raise ConfigError(f"holdout fraction {holdout} not in [0, 1)")
    start = time.perf_counter()
    if dataset is None:
        dataset = collect_dataset(corpus=corpus, cores=cores,
                                  variants_per_core=variants_per_core,
                                  seed=seed, max_workers=max_workers)
    if len(dataset) < 4:
        raise ConfigError(
            f"dataset has {len(dataset)} samples; need at least 4 to train")

    train_idx, hold_idx = _split(len(dataset), holdout, seed)
    eval_model = CyclePredictor(lam=lam, rounds=rounds,
                                learning_rate=learning_rate)
    eval_model.fit(dataset.X[train_idx], dataset.cycles[train_idx])

    hold_actual = dataset.cycles[hold_idx]
    hold_pred = eval_model.predict(dataset.X[hold_idx])
    hold_classes = [dataset.classes[i] for i in hold_idx]
    train_pred = eval_model.predict(dataset.X[train_idx])

    metrics: Dict[str, object] = {
        "train": _eval_block(dataset.cycles[train_idx], train_pred),
        "holdout": _eval_block(hold_actual, hold_pred),
        "holdout_by_class": _per_class(hold_classes, hold_actual, hold_pred),
    }

    final = CyclePredictor(lam=lam, rounds=rounds,
                           learning_rate=learning_rate)
    final.fit(dataset.X, dataset.cycles)
    elapsed = time.perf_counter() - start
    return TrainReport(
        predictor=final,
        metrics=metrics,
        train_seconds=elapsed,
        n_samples=len(dataset),
        n_train=int(len(train_idx)),
        n_holdout=int(len(hold_idx)),
        dataset_digest=features_digest(dataset.X),
        seed=seed,
    )


# -- artifacts ----------------------------------------------------------------

def default_artifact_path() -> Path:
    """``REPRO_PREDICT_MODEL`` override, else the in-repo default."""
    override = os.environ.get(_ENV_MODEL_PATH)
    if override:
        return Path(override)
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").is_file():
            return parent / _DEFAULT_ARTIFACT
    return Path.cwd() / _DEFAULT_ARTIFACT


def save_artifact(report: TrainReport, path: Optional[Path] = None,
                  extras: Optional[Dict[str, object]] = None) -> Path:
    """Serialize a trained model + metrics + provenance to JSON."""
    from ...profiling.manifest import RunManifest

    path = Path(path) if path is not None else default_artifact_path()
    model_payload = report.predictor.to_dict()
    payload = {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "feature_schema": FEATURE_SCHEMA_VERSION,
        "content_key": report.predictor.content_key(),
        "model": model_payload,
        "metrics": report.metrics,
        "training": {
            "seed": report.seed,
            "n_samples": report.n_samples,
            "n_train": report.n_train,
            "n_holdout": report.n_holdout,
            "train_seconds": round(report.train_seconds, 3),
            "dataset_digest": report.dataset_digest,
        },
        "manifest": RunManifest.collect(
            model="predictor", config="",
            extras=dict(extras or {})).to_dict(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def _quarantine_artifact(path: Path, why: str) -> ConfigError:
    """Move a corrupt predictor artifact aside; return the error to raise.

    Same retry-with-quarantine discipline as the compile cache: garbled
    JSON must neither crash with a raw decode traceback nor keep
    poisoning every later load.  The file moves to ``<name>.corrupt``
    next to the original so a fresh ``train`` can land cleanly.
    """
    aside = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, aside)
        where = f"moved to {aside}"
    except OSError:
        where = "could not be moved aside"
    return ConfigError(
        f"predictor artifact {path} is corrupt ({why}; {where}); retrain "
        "with `python -m repro.perf.predictor train`")


def load_artifact(path: Optional[Path] = None
                  ) -> Tuple[CyclePredictor, Dict[str, object]]:
    """Load (predictor, artifact payload); schema-checked, content-verified.

    Every failure mode raises :class:`~repro.errors.ConfigError`: a
    missing file names the training command, corrupt JSON or an
    undeserializable model payload quarantines the artifact
    (``<name>.corrupt``) first, and schema / content-key mismatches
    leave the file in place (it is intact — just wrong or edited).
    """
    path = Path(path) if path is not None else default_artifact_path()
    if not path.is_file():
        raise ConfigError(
            f"no predictor artifact at {path}; train one with "
            "`python -m repro.perf.predictor train` or point "
            f"{_ENV_MODEL_PATH} at an existing artifact")
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        raise _quarantine_artifact(path, f"bad JSON: {exc}") from None
    except OSError as exc:
        raise ConfigError(
            f"predictor artifact {path} is unreadable: {exc}") from None
    if not isinstance(payload, dict):
        raise _quarantine_artifact(path, "top level is not an object")
    if payload.get("schema") != ARTIFACT_SCHEMA_VERSION:
        raise ConfigError(
            f"predictor artifact {path} has schema "
            f"{payload.get('schema')!r}; this build expects "
            f"{ARTIFACT_SCHEMA_VERSION}")
    try:
        predictor = CyclePredictor.from_dict(payload["model"])
    except ConfigError:
        raise
    except Exception as exc:
        raise _quarantine_artifact(
            path, f"model payload does not deserialize: {exc!r}") from None
    stored_key = payload.get("content_key")
    if stored_key and stored_key != predictor.content_key():
        raise ConfigError(
            f"predictor artifact {path} content key mismatch — the model "
            "payload was edited after training; retrain instead")
    return predictor, payload


def try_load_artifact(path: Optional[Path] = None
                      ) -> Tuple[Optional[CyclePredictor],
                                 Optional[Dict[str, object]]]:
    """:func:`load_artifact`, degraded to ``(None, None)`` on failure.

    The graceful tail of the degradation chain: callers that can fall
    back to full simulation (triage sweeps, benchmark fast tiers) get a
    structured :class:`~repro.errors.DegradedSweepWarning` instead of a
    crash; corrupt artifacts are still quarantined by the strict loader
    underneath.
    """
    import warnings

    from ...errors import DegradedSweepWarning

    try:
        return load_artifact(path)
    except ConfigError as exc:
        warnings.warn(
            f"predictor fast tier unavailable, falling back to full "
            f"simulation: {exc}", DegradedSweepWarning, stacklevel=2)
        return None, None
