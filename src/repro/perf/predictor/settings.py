"""The ``REPRO_PREDICT*`` environment knobs.

* ``REPRO_PREDICT`` — ``1`` enables the predictor fast tier in sweeps
  and benchmarks that support triage.  Off by default: published
  figure/table numbers are always simulated, and with the switch off
  not a single code path consults the predictor.
* ``REPRO_PREDICT_MODEL`` — path to the trained artifact JSON
  (default ``benchmarks/results/predictor_model.json``).
* ``REPRO_PREDICT_TOPK`` — shortlist size floor (default 8): the top-K
  predicted candidates are always simulated.
* ``REPRO_PREDICT_EPSILON`` — relative widening of the shortlist
  (default 0.05): any candidate predicted within (1 + epsilon) of the
  predicted best is simulated too, so near-ties are never decided by
  the model alone.

All parsing is strict (:mod:`repro.config.env`): garbage values raise
:class:`~repro.errors.ConfigError` instead of silently changing what a
sweep simulates.
"""

from __future__ import annotations

from ...config.env import env_flag, env_float, env_int

__all__ = ["predict_enabled", "predict_top_k", "predict_epsilon"]

_ENV_PREDICT = "REPRO_PREDICT"
_ENV_TOPK = "REPRO_PREDICT_TOPK"
_ENV_EPSILON = "REPRO_PREDICT_EPSILON"

DEFAULT_TOP_K = 8
DEFAULT_EPSILON = 0.05


def predict_enabled() -> bool:
    """Whether the predictor fast tier is switched on (off by default)."""
    return env_flag(_ENV_PREDICT, default=False)


def predict_top_k() -> int:
    return env_int(_ENV_TOPK, default=DEFAULT_TOP_K, minimum=1)


def predict_epsilon() -> float:
    return env_float(_ENV_EPSILON, default=DEFAULT_EPSILON, minimum=0.0)
