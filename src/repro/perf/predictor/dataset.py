"""Training data: model zoo x design-point variants, via the sweep harness.

A training job is one (model, design point) pair; the worker compiles
the model through the normal :class:`~repro.compiler.GraphEngine` path —
so the persistent compile cache and the in-memory tiers make repeated
collections cheap — and returns one (feature row, simulated cycles)
sample per layer group.  Jobs fan out over the supervised sweep layer
(:func:`repro.bench.supervise` — per-job retry/timeout/quarantine and
optional ``REPRO_SWEEP_CHECKPOINT`` resume with zero re-simulation; a
quarantined job drops its samples with a structured warning instead of
killing the collection), results come back in job order, and every
random choice flows from one seeded generator, so a (corpus, cores,
variants, seed) tuple always yields the identical dataset.

Design-point variants perturb the Table 5 axes the DSE surface sweeps —
clock, L1/UB bus widths, fabric bandwidth per core, buffer capacities,
and the cube's m dimension (the Section 3.2 batch-1 knob) — around a
named base core.  The same generator feeds training diversity and the
candidate sweeps, so the predictor is evaluated on the distribution it
is used on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...config.core_configs import CoreConfig, CubeShape, core_config_by_name
from ...graph.workload import OpWorkload
from .features import feature_names, layer_features

__all__ = [
    "Dataset",
    "FULL_CORPUS",
    "SMOKE_CORPUS",
    "workload_class",
    "design_point_variants",
    "collect_dataset",
]

# (model name, builder kwargs) — the sweep surface the predictor trains
# on.  Classes (see workload_class) slice the error report.
FULL_CORPUS: Tuple[Tuple[str, dict], ...] = (
    ("gesture", {}),
    ("wide_deep", {}),
    ("mobilenet_v2", {"batch": 1}),
    ("resnet18", {"batch": 1}),
    ("resnet50", {"batch": 1}),
    ("bert-base", {"batch": 1, "seq": 128}),
)

# The CI smoke corpus: small models only, a few seconds end to end.
SMOKE_CORPUS: Tuple[Tuple[str, dict], ...] = (
    ("gesture", {}),
    ("wide_deep", {}),
    ("mobilenet_v2", {"batch": 1}),
)

_CLASS_BY_MODEL = {
    "gesture": "tiny-cnn",
    "mobilenet_v2": "cnn",
    "resnet18": "cnn",
    "resnet50": "cnn",
    "vgg16": "cnn",
    "isp_unet": "cnn",
    "detector": "cnn",
    "siamese": "cnn",
    "bert-base": "transformer",
    "bert-large": "transformer",
    "wide_deep": "mlp",
    "pointnet": "mlp",
}

_DEFAULT_CORES = ("ascend", "ascend-max", "ascend-lite")


def workload_class(model_name: str) -> str:
    """Coarse workload class used for per-class error reporting."""
    return _CLASS_BY_MODEL.get(model_name, "other")


@dataclass
class Dataset:
    """Aligned per-layer samples: features, targets, and slicing labels."""

    X: np.ndarray                 # (n, n_features) float64
    cycles: np.ndarray            # (n,) float64 simulated layer cycles
    classes: List[str]            # workload class per sample
    labels: List[str]             # "model@config/layer" per sample

    def __len__(self) -> int:
        return len(self.cycles)

    @property
    def n_features(self) -> int:
        return self.X.shape[1]


# -- design-point variants ----------------------------------------------------

_FREQ_FACTORS = (0.5, 0.75, 1.0, 1.25, 1.5)
_BUS_FACTORS = (0.25, 0.5, 1.0, 2.0)
_LLC_FACTORS = (0.5, 1.0, 2.0, 4.0)
_BUFFER_FACTORS = (0.5, 1.0, 2.0)
_CUBE_M_CHOICES = (4, 8, 16)


def design_point_variants(base: CoreConfig, count: int, seed: int,
                          include_base: bool = True,
                          vary_cube: bool = True) -> List[CoreConfig]:
    """``count`` seeded Table-5-style perturbations of ``base``.

    Deterministic in (base.name, count, seed, flags).  Variants are
    named ``<base>-v<i>`` so cache keys, labels, and reports stay
    readable; the physical fields are what the feature extractor reads,
    so renaming never aliases two distinct designs.
    """
    rng = np.random.default_rng([seed, len(base.name), count])
    variants: List[CoreConfig] = [base] if include_base else []
    for i in range(count):
        kwargs: Dict[str, object] = {
            "name": f"{base.name}-v{i}",
            "frequency_hz": base.frequency_hz * rng.choice(_FREQ_FACTORS),
            "l1_to_l0a_bw": base.l1_to_l0a_bw * rng.choice(_BUS_FACTORS),
            "l1_to_l0b_bw": base.l1_to_l0b_bw * rng.choice(_BUS_FACTORS),
            "ub_bw": base.ub_bw * rng.choice(_BUS_FACTORS),
            "l1_bytes": int(base.l1_bytes * rng.choice(_BUFFER_FACTORS)),
            "ub_bytes": int(base.ub_bytes * rng.choice(_BUFFER_FACTORS)),
        }
        if base.llc_bw_per_core is not None:
            kwargs["llc_bw_per_core"] = (base.llc_bw_per_core
                                         * rng.choice(_LLC_FACTORS))
        if vary_cube:
            kwargs["cube"] = CubeShape(int(rng.choice(_CUBE_M_CHOICES)),
                                       base.cube.k, base.cube.n)
        variants.append(dataclasses.replace(base, **kwargs))
    return variants


# -- collection ---------------------------------------------------------------

def _supported(pairs: Sequence[Tuple[str, OpWorkload]],
               config: CoreConfig) -> bool:
    """Whether every GEMM dtype in the model runs on this core's cube."""
    return all(config.supports_dtype(g.dtype)
               for _, work in pairs for g in work.gemms)


def _collect_job(job: Tuple[str, dict, CoreConfig]
                 ) -> Tuple[List[List[float]], List[float], List[str]]:
    """Sweep worker: compile one (model, config) pair, emit its samples."""
    from ...compiler import GraphEngine
    from ...compiler.graph_engine import _im2col_scales
    from ...models import build_model

    model_name, kwargs, config = job
    graph = build_model(model_name, **kwargs)
    pairs = list(graph.grouped_workloads())
    scales = _im2col_scales(graph)
    compiled = GraphEngine(config).compile_graph(graph)
    rows: List[List[float]] = []
    targets: List[float] = []
    labels: List[str] = []
    for (group, work), layer in zip(pairs, compiled.layers):
        rows.append(layer_features(work, config,
                                   scales.get(group, 1.0)).tolist())
        targets.append(float(layer.cycles))
        labels.append(f"{model_name}@{config.name}/{group}")
    return rows, targets, labels


def collect_dataset(corpus: Optional[Sequence[Tuple[str, dict]]] = None,
                    cores: Optional[Sequence[str]] = None,
                    variants_per_core: int = 12,
                    seed: int = 0,
                    max_workers: Optional[int] = None) -> Dataset:
    """Simulate the corpus across design-point variants, in parallel.

    Unsupported (model, core) pairs — e.g. fp16 models on the int8-only
    Tiny cube — are filtered out up front rather than left to fail in a
    worker.
    """
    from ...bench.supervisor import SweepPolicy, supervise
    from ...models import build_model

    corpus = list(corpus if corpus is not None else FULL_CORPUS)
    core_names = list(cores if cores is not None else _DEFAULT_CORES)

    jobs: List[Tuple[str, dict, CoreConfig]] = []
    job_classes: List[str] = []
    for model_name, kwargs in corpus:
        pairs = list(build_model(model_name, **kwargs).grouped_workloads())
        for core_name in core_names:
            base = core_config_by_name(core_name)
            for config in design_point_variants(base, variants_per_core,
                                                seed=seed):
                if not _supported(pairs, config):
                    continue
                jobs.append((model_name, kwargs, config))
                job_classes.append(workload_class(model_name))

    outcome = supervise(jobs, _collect_job, max_workers=max_workers,
                        policy=SweepPolicy.from_env())
    rows: List[List[float]] = []
    targets: List[float] = []
    classes: List[str] = []
    labels: List[str] = []
    for cls, result in zip(job_classes, outcome.results):
        if result is None:
            # Quarantined by the supervisor (reported there): training
            # proceeds on the surviving samples rather than dying.
            continue
        job_rows, job_targets, job_labels = result
        rows.extend(job_rows)
        targets.extend(job_targets)
        classes.extend([cls] * len(job_targets))
        labels.extend(job_labels)
    X = (np.asarray(rows, dtype=np.float64) if rows
         else np.empty((0, len(feature_names())), dtype=np.float64))
    return Dataset(X=X, cycles=np.asarray(targets, dtype=np.float64),
                   classes=classes, labels=labels)
