"""Roofline utilities used by the memory-wall analysis (Table 6)."""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigError
from ..graph.workload import OpWorkload

__all__ = ["arithmetic_intensity", "roofline_time_s"]


def arithmetic_intensity(workloads: Sequence[OpWorkload]) -> float:
    """FLOPs per byte of (weights + activations) traffic."""
    flops = sum(2 * w.macs + w.vector_elem_passes for w in workloads)
    traffic = sum(w.weight_bytes + w.input_bytes + w.output_bytes
                  for w in workloads)
    if traffic == 0:
        raise ConfigError("workloads move no bytes; intensity undefined")
    return flops / traffic


def roofline_time_s(flops: float, traffic_bytes: float,
                    peak_flops: float, mem_bw: float) -> float:
    """Classic roofline: the slower of compute and memory streaming."""
    if peak_flops <= 0 or mem_bw <= 0:
        raise ConfigError("peak throughput and bandwidth must be positive")
    return max(flops / peak_flops, traffic_bytes / mem_bw)
