"""Energy/power model (Tables 3 and 8, Section 2.1's 1/16 argument).

The fp16 anchors come straight from Table 3: the cube sustains
2.56 TFLOPS/W and the vector unit 0.56 TFLOPS/W at 7 nm / 1 GHz — the
gap is the 16x operand-reuse energy saving the 3D cube buys.  Memory
access energy uses the per-byte constants of the tech model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..config.core_configs import CoreConfig
from ..config.tech import TechModel, tech_by_node
from ..graph.workload import OpWorkload

__all__ = ["EnergyModel", "UNIT_POWER_TABLE"]

# Table 3 rows, reproduced by the model below (name -> (W, TFLOPS/W)).
UNIT_POWER_TABLE: Dict[str, Tuple[float, float]] = {
    "vector": (0.46, 0.56),
    "cube": (3.13, 2.56),
}


@dataclass
class EnergyModel:
    """Energy accounting for workloads on a core design point."""

    config: CoreConfig
    node_nm: float = 7
    # int8 MACs cost roughly 1/4 the energy of fp16 MACs.
    int8_energy_scale: float = 0.25
    # Static/leakage + clock-tree power as a fraction of peak dynamic.
    static_fraction: float = 0.10

    def __post_init__(self) -> None:
        self.tech: TechModel = tech_by_node(self.node_nm)

    # -- unit-level (Table 3) ----------------------------------------------------

    def cube_power_w(self) -> float:
        """Cube power at full throughput (3.13 W for the 8 TFLOPS cube)."""
        flops = self.config.cube.flops_per_cycle * self.config.frequency_hz
        return flops * self.tech.cube_pj_per_flop * 1e-12

    def vector_power_w(self) -> float:
        flops = 2 * self.config.vector_lanes_fp16 * self.config.frequency_hz
        return flops * self.tech.vector_pj_per_flop * 1e-12

    def cube_tflops_per_w(self) -> float:
        flops = self.config.cube.flops_per_cycle * self.config.frequency_hz
        return flops / 1e12 / self.cube_power_w()

    def vector_tflops_per_w(self) -> float:
        flops = 2 * self.config.vector_lanes_fp16 * self.config.frequency_hz
        return flops / 1e12 / self.vector_power_w()

    # -- workload energy ------------------------------------------------------------

    def workload_energy_j(self, workloads: Sequence[OpWorkload],
                          int8: bool = False,
                          dram_traffic_bytes: float = 0.0) -> float:
        """Dynamic energy for a set of layer workloads."""
        mac_scale = self.int8_energy_scale if int8 else 1.0
        cube_j = sum(
            2 * w.macs * self.tech.cube_pj_per_flop * mac_scale * 1e-12
            for w in workloads
        )
        vec_j = sum(
            w.vector_elem_passes * self.tech.vector_pj_per_flop * 1e-12
            for w in workloads
        )
        sram_j = sum(
            (w.input_bytes + w.output_bytes + w.weight_bytes)
            * self.tech.sram_pj_per_byte * 1e-12
            for w in workloads
        )
        dram_j = dram_traffic_bytes * self.tech.dram_pj_per_byte * 1e-12
        return cube_j + vec_j + sram_j + dram_j

    def average_power_w(self, workloads: Sequence[OpWorkload],
                        seconds: float, int8: bool = False,
                        dram_traffic_bytes: float = 0.0) -> float:
        if seconds <= 0:
            return 0.0
        dynamic = self.workload_energy_j(workloads, int8=int8,
                                         dram_traffic_bytes=dram_traffic_bytes)
        peak = self.cube_power_w() + self.vector_power_w()
        return dynamic / seconds + self.static_fraction * peak

    def tops_per_watt_int8(self, utilization: float = 0.85) -> float:
        """Peak-mode int8 efficiency — the Table 8 metric."""
        from ..dtypes import INT8

        if not self.config.supports_dtype(INT8):
            return 0.0
        ops = self.config.peak_ops(INT8) * utilization
        macs_per_s = ops / 2
        mac_w = (2 * macs_per_s * self.tech.cube_pj_per_flop
                 * self.int8_energy_scale * 1e-12)
        vec_w = 0.3 * self.vector_power_w()
        sram_w = (macs_per_s / 16 * 2  # bytes/s after 16x cube reuse
                  * self.tech.sram_pj_per_byte * 1e-12)
        static = self.static_fraction * (self.cube_power_w()
                                         * self.int8_energy_scale)
        total_w = mac_w + vec_w + sram_w + static
        return ops / 1e12 / total_w
