"""Area model for computing units and cores (Tables 3 and 4).

The 7 nm anchors (scalar 0.04 mm2, vector 0.70 mm2, cube 2.57 mm2) solve
the per-MAC / per-lane constants; other nodes scale quadratically with
feature size (see :class:`~repro.config.tech.TechModel`).
"""

from __future__ import annotations

from typing import Dict

from ..config.core_configs import CoreConfig
from ..config.tech import TechModel, tech_by_node

__all__ = ["unit_areas", "core_area_mm2", "cube_perf_density"]


def unit_areas(config: CoreConfig, node_nm: float = 7) -> Dict[str, float]:
    """Area (mm2) of each computing unit of a core at a process node."""
    tech = tech_by_node(node_nm)
    kmacs = config.cube.macs_per_cycle / 1024
    lanes = config.vector_lanes_fp16
    return {
        "scalar": tech.scalar_mm2,
        "vector": lanes * tech.vector_mm2_per_lane,
        "cube": kmacs * tech.cube_mm2_per_kmac,
    }


def core_area_mm2(config: CoreConfig, node_nm: float = 7,
                  buffers_factor: float = 1.55) -> float:
    """Whole-core area: computing units plus buffers/control.

    ``buffers_factor`` covers L1/UB/L0 SRAM and control, sized so a
    7 nm Ascend-Max core lands near the die-photo share of the 910's
    456 mm2 compute die (32 cores + LLC + CPUs + NoC).
    """
    units = unit_areas(config, node_nm)
    return sum(units.values()) * buffers_factor


def cube_perf_density(config: CoreConfig, node_nm: float,
                      frequency_hz: float = None) -> float:
    """GFLOPS/mm2 of the whole core — the Table 4 metric."""
    freq = frequency_hz or config.frequency_hz
    flops = config.cube.flops_per_cycle * freq
    return flops / 1e9 / core_area_mm2(config, node_nm)
