"""The Ascend core simulator — the paper's primary contribution.

:class:`AscendCore` executes :class:`~repro.isa.program.Program` objects in
two coupled modes:

* **timing**: an event-driven replay of the PSQ/per-pipe-queue/barrier
  execution model of Figure 3, using the Table 5 design parameters as the
  cost model;
* **functional**: numpy-backed execution of the same instruction list
  against the core's scratchpads, in the causal order the timing engine
  derived.
"""

from .costs import CostModel
from .trace import TraceEvent, ExecutionTrace, TraceSummary
from .engine import schedule
from .core import (AscendCore, RunResult, functional_min_tiles,
                   resolve_workers)

__all__ = [
    "CostModel",
    "TraceEvent",
    "ExecutionTrace",
    "TraceSummary",
    "schedule",
    "AscendCore",
    "RunResult",
    "functional_min_tiles",
    "resolve_workers",
]
