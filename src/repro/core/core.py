"""The Ascend core: timing + functional execution of a Program.

The core owns its scratchpads (:class:`~repro.memory.hierarchy.CoreMemory`)
and a :class:`~repro.core.costs.CostModel` for its design point.  ``run``
first derives the schedule (Figure 3 semantics), then — unless timing-only
— replays the instructions functionally in causal (start-time) order, so
results are correct for any legally synchronized program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config.core_configs import CoreConfig
from ..errors import IsaError
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    PipeBarrier,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    WaitFlag,
)
from ..isa.program import Program
from ..memory.hierarchy import CoreMemory
from .costs import CostModel
from .cube import execute_cube
from .engine import schedule
from .mte import (
    execute_copy,
    execute_decompress,
    execute_img2col,
    execute_transpose,
)
from .trace import ExecutionTrace
from .vector import execute_vector

__all__ = ["AscendCore", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one program execution on a core."""

    trace: ExecutionTrace
    config: CoreConfig

    @property
    def cycles(self) -> int:
        return self.trace.total_cycles

    @property
    def seconds(self) -> float:
        return self.cycles / self.config.frequency_hz


class AscendCore:
    """One Ascend core instance (any design point from Table 5)."""

    def __init__(self, config: CoreConfig, gm_bytes: int = 64 * 1024 * 1024) -> None:
        self.config = config
        self.memory = CoreMemory(config, gm_bytes=gm_bytes)
        self.costs = CostModel(config)

    def run(self, program: Program, functional: bool = True,
            validate: bool = True) -> RunResult:
        """Execute a program; returns timing (and mutates GM if functional).

        Args:
            program: the instruction stream to execute.
            functional: when False, only the schedule is computed — used
                for full-network performance studies where numerics are
                irrelevant and weights would not fit in simulation memory.
            validate: run static program validation first.
        """
        if validate:
            program.validate(self.config)
        trace = schedule(program, self.costs)
        if functional:
            for event in trace.events:
                self._execute(event.instr)
        return RunResult(trace=trace, config=self.config)

    def _execute(self, instr: Instruction) -> None:
        if isinstance(instr, CubeMatmul):
            execute_cube(instr, self.memory)
        elif isinstance(instr, VectorInstr):
            execute_vector(instr, self.memory)
        elif isinstance(instr, Img2ColInstr):
            execute_img2col(instr, self.memory)
        elif isinstance(instr, TransposeInstr):
            execute_transpose(instr, self.memory)
        elif isinstance(instr, DecompressInstr):
            execute_decompress(instr, self.memory)
        elif isinstance(instr, CopyInstr):
            execute_copy(instr, self.memory)
        elif isinstance(instr, (ScalarInstr, SetFlag, WaitFlag, PipeBarrier)):
            pass  # no architectural state outside the schedule
        else:  # pragma: no cover - instruction set is closed
            raise IsaError(f"cannot execute {type(instr).__name__}")
