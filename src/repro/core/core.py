"""The Ascend core: timing + functional execution of a Program.

The core owns its scratchpads (:class:`~repro.memory.hierarchy.CoreMemory`)
and a :class:`~repro.core.costs.CostModel` for its design point.  ``run``
first derives the schedule (Figure 3 semantics), then — unless timing-only
— replays the instructions functionally in causal (start-time) order, so
results are correct for any legally synchronized program.

Functional replay has two modes:

* **serial** (the oracle): one instruction at a time, in causal order —
  bit-exact by construction, and the reference the parallel mode is
  tested against.
* **wavefront-parallel**: the scheduled trace is partitioned into waves
  of instructions whose busy intervals mutually overlap.  Overlap on the
  timeline proves independence — any flag edge or same-pipe program
  order forces the consumer to start at or after the producer's end — so
  a wave's tile ops touch disjoint state and dispatch together across a
  thread pool.  numpy kernels release the GIL, so tiles compute
  concurrently; waves are separated by barriers, preserving every
  producer -> consumer edge and therefore the serial mode's results
  bit-for-bit.

Worker count comes from the ``workers`` argument, falling back to the
``REPRO_FUNC_WORKERS`` environment variable (default 1 = serial oracle).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Union

from ..config.core_configs import CoreConfig
from ..errors import IsaError
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    PipeBarrier,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    WaitFlag,
)
from ..isa.program import Program
from ..memory.hierarchy import CoreMemory
from .costs import CostModel
from .cube import execute_cube
from .engine import schedule
from .mte import (
    execute_copy,
    execute_decompress,
    execute_img2col,
    execute_transpose,
)
from .trace import ExecutionTrace
from .vector import execute_vector

__all__ = ["AscendCore", "RunResult", "functional_min_tiles",
           "resolve_workers"]

_ENV_WORKERS = "REPRO_FUNC_WORKERS"

# Waves shorter than this run inline even in parallel mode: dispatching
# a couple of tiles to a pool costs more than the GIL it frees.
_MIN_PARALLEL_WAVE = 2

_ENV_MIN_TILES = "REPRO_FUNC_MIN_TILES"

# Programs with fewer functional (tile) instructions than this run
# serially even when REPRO_FUNC_WORKERS asks for a pool: spinning up the
# executor and partitioning waves costs more than the numpy time it
# overlaps.  The default sits between a 256^3 GEMM (~130 tiles, where
# the pool measured *slower* than serial) and the kernel sizes where
# wavefront parallelism starts winning (thousands of tiles).
_DEFAULT_MIN_TILES = 512


def functional_min_tiles() -> int:
    """Tile-count threshold below which functional replay stays serial.

    ``REPRO_FUNC_MIN_TILES`` overrides (``0`` disables the cutover, so a
    pool request always gets a pool); invalid values raise
    :class:`~repro.errors.ConfigError` naming the variable.
    """
    from ..config.env import env_int

    return env_int(_ENV_MIN_TILES, default=_DEFAULT_MIN_TILES, minimum=0)


def resolve_workers(workers: Optional[Union[int, str]] = None) -> int:
    """Effective functional worker count.

    ``None`` defers to ``REPRO_FUNC_WORKERS`` (default 1).  ``"serial"``
    and ``"oracle"`` force the serial path; any integer below 2 does the
    same.  An invalid environment value raises
    :class:`~repro.errors.ConfigError` naming the variable.
    """
    if workers is None:
        from ..config.env import env_int

        value = env_int(_ENV_WORKERS, default=1, minimum=0,
                        special={"serial": 1, "oracle": 1})
        return max(1, value)
    if isinstance(workers, str):
        cleaned = workers.strip().lower()
        if cleaned in ("serial", "oracle", ""):
            return 1
        try:
            workers = int(cleaned)
        except ValueError:
            from ..errors import ConfigError

            raise ConfigError(
                f"workers={workers!r} is not a valid value; accepted: an "
                "integer, 'serial', or 'oracle'"
            ) from None
    return max(1, workers)


@dataclass
class RunResult:
    """Outcome of one program execution on a core."""

    trace: ExecutionTrace
    config: CoreConfig

    @property
    def cycles(self) -> int:
        return self.trace.total_cycles

    @property
    def seconds(self) -> float:
        return self.cycles / self.config.frequency_hz


class AscendCore:
    """One Ascend core instance (any design point from Table 5)."""

    def __init__(self, config: CoreConfig, gm_bytes: int = 64 * 1024 * 1024) -> None:
        self.config = config
        self.memory = CoreMemory(config, gm_bytes=gm_bytes)
        self.costs = CostModel(config)

    def run(self, program: Program, functional: bool = True,
            validate: bool = True,
            workers: Optional[Union[int, str]] = None) -> RunResult:
        """Execute a program; returns timing (and mutates GM if functional).

        Args:
            program: the instruction stream to execute.
            functional: when False, only the schedule is computed — used
                for full-network performance studies where numerics are
                irrelevant and weights would not fit in simulation memory.
            validate: run static program validation first.
            workers: functional thread count (default: the
                ``REPRO_FUNC_WORKERS`` environment variable, serial when
                unset).  Values below 2 select the serial oracle.
        """
        if validate:
            program.validate(self.config)
        trace = schedule(program, self.costs)
        if functional:
            self._replay(trace, resolve_workers(workers))
        return RunResult(trace=trace, config=self.config)

    # -- functional replay ----------------------------------------------------

    def _replay(self, trace: ExecutionTrace, workers: int) -> None:
        if workers > 1 and trace.n_functional() < functional_min_tiles():
            workers = 1  # pool overhead beats the win on small kernels
        if workers <= 1:
            for instr in trace.functional_instructions():
                self._execute(instr)
            return
        waves = trace.wavefronts()
        execute = self._execute
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for wave in waves:
                if len(wave) < _MIN_PARALLEL_WAVE:
                    for instr in wave:
                        execute(instr)
                else:
                    # list() drains the iterator so the first worker
                    # exception propagates rather than being dropped.
                    list(pool.map(execute, wave))

    def _execute(self, instr: Instruction) -> None:
        if isinstance(instr, CubeMatmul):
            execute_cube(instr, self.memory)
        elif isinstance(instr, VectorInstr):
            execute_vector(instr, self.memory)
        elif isinstance(instr, Img2ColInstr):
            execute_img2col(instr, self.memory)
        elif isinstance(instr, TransposeInstr):
            execute_transpose(instr, self.memory)
        elif isinstance(instr, DecompressInstr):
            execute_decompress(instr, self.memory)
        elif isinstance(instr, CopyInstr):
            execute_copy(instr, self.memory)
        elif isinstance(instr, (ScalarInstr, SetFlag, WaitFlag, PipeBarrier)):
            pass  # no architectural state outside the schedule
        else:  # pragma: no cover - instruction set is closed
            raise IsaError(f"cannot execute {type(instr).__name__}")
