"""Execution traces: what ran where, when, and how many bytes it moved.

The analysis harness consumes traces to reproduce the paper's per-layer
figures: cube/vector busy-cycle ratios (Figures 4-8) and L1 bandwidth
profiles (Figure 9).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..isa.instructions import (
    CopyInstr,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    TransposeInstr,
)
from ..isa.memref import MemSpace
from ..isa.pipes import Pipe

__all__ = ["TraceEvent", "ExecutionTrace", "TraceSummary"]

_MOVE_TYPES = (CopyInstr, Img2ColInstr, TransposeInstr, DecompressInstr)


@dataclass(frozen=True)
class TraceEvent:
    """One instruction's occupancy of its pipe."""

    index: int  # program order
    instr: Instruction
    pipe: Pipe
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start

    @property
    def tag(self) -> str:
        return self.instr.tag


@dataclass(frozen=True)
class TraceSummary:
    """Aggregates of one trace, computed in a single pass (see
    :meth:`ExecutionTrace.summary`)."""

    total_cycles: int
    busy_by_pipe: Tuple[int, ...]  # indexed by int(Pipe)
    l1_read_bytes: int
    l1_write_bytes: int
    gm_read_bytes: int
    gm_write_bytes: int

    def busy_cycles(self, pipe: Pipe) -> int:
        return self.busy_by_pipe[pipe]


@dataclass
class ExecutionTrace:
    """All events of one program run, with aggregate queries."""

    events: List[TraceEvent] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return max((e.end for e in self.events), default=0)

    def busy_cycles(self, pipe: Pipe, tag: Optional[str] = None) -> int:
        """Sum of occupied cycles on a pipe (optionally for one tag).

        Flag/barrier bookkeeping (1-cycle events with no payload) is
        included; it is negligible against real work.
        """
        return sum(
            e.cycles
            for e in self.events
            if e.pipe is pipe and (tag is None or e.tag == tag)
        )

    def utilization(self, pipe: Pipe) -> float:
        total = self.total_cycles
        if total == 0:
            return 0.0
        return self.busy_cycles(pipe) / total

    def tags(self) -> List[str]:
        """Distinct non-empty tags in first-appearance order."""
        seen: Dict[str, None] = {}
        for e in self.events:
            if e.tag and e.tag not in seen:
                seen[e.tag] = None
        return list(seen)

    def span(self, tag: str) -> Tuple[int, int]:
        """(first start, last end) over events carrying ``tag``."""
        starts = [e.start for e in self.events if e.tag == tag]
        ends = [e.end for e in self.events if e.tag == tag]
        if not starts:
            return (0, 0)
        return (min(starts), max(ends))

    def summary(self) -> "TraceSummary":
        """Makespan, per-pipe busy cycles and L1/GM traffic in one pass.

        Equivalent to ``total_cycles`` + six ``busy_cycles`` calls +
        ``l1_traffic_bytes`` + ``gm_traffic_bytes``, but walks the event
        list once — the layer-compilation hot path.
        """
        total = 0
        busy = [0] * len(Pipe)
        l1_read = l1_write = gm_read = gm_write = 0
        for e in self.events:
            end = e.end
            if end > total:
                total = end
            busy[e.pipe] += end - e.start
            instr = e.instr
            if isinstance(instr, _MOVE_TYPES):
                src = instr.src.space
                dst = instr.dst.space
                if src is MemSpace.L1:
                    l1_read += instr.src.nbytes
                elif src is MemSpace.GM:
                    gm_read += instr.dst.nbytes
                if dst is MemSpace.L1:
                    l1_write += instr.dst.nbytes
                elif dst is MemSpace.GM:
                    gm_write += instr.src.nbytes
        return TraceSummary(
            total_cycles=total, busy_by_pipe=tuple(busy),
            l1_read_bytes=l1_read, l1_write_bytes=l1_write,
            gm_read_bytes=gm_read, gm_write_bytes=gm_write,
        )

    # -- bandwidth accounting -------------------------------------------------

    def l1_traffic_bytes(self, tag: Optional[str] = None) -> Tuple[int, int]:
        """(bytes read from L1, bytes written to L1) by data movement.

        Reads: L1 -> L0A/L0B/UB feeds (MTE1).  Writes: inbound GM -> L1
        (MTE2) and UB -> L1 write-backs (MTE3).  This is the quantity
        Figure 9 profiles.
        """
        read = 0
        written = 0
        for e in self.events:
            if tag is not None and e.tag != tag:
                continue
            instr = e.instr
            if not isinstance(instr, _MOVE_TYPES):
                continue
            if instr.src.space is MemSpace.L1:
                read += instr.src.nbytes
            if instr.dst.space is MemSpace.L1:
                written += instr.dst.nbytes
        return read, written

    def moved_bytes(self, src: MemSpace, dst: MemSpace,
                    tag: Optional[str] = None) -> int:
        """Bytes moved along one (src, dst) space pair."""
        total = 0
        for e in self.events:
            if tag is not None and e.tag != tag:
                continue
            instr = e.instr
            if isinstance(instr, _MOVE_TYPES):
                if instr.src.space is src and instr.dst.space is dst:
                    total += instr.src.nbytes if src is not MemSpace.GM else instr.dst.nbytes
        return total

    def gm_traffic_bytes(self, tag: Optional[str] = None) -> Tuple[int, int]:
        """(bytes read from GM, bytes written to GM) — BIU/LLC traffic."""
        read = 0
        written = 0
        for e in self.events:
            if tag is not None and e.tag != tag:
                continue
            instr = e.instr
            if not isinstance(instr, _MOVE_TYPES):
                continue
            if instr.src.space is MemSpace.GM:
                read += instr.dst.nbytes
            if instr.dst.space is MemSpace.GM:
                written += instr.src.nbytes
        return read, written

    def per_tag_busy(self, pipe: Pipe) -> Dict[str, int]:
        busy: Dict[str, int] = defaultdict(int)
        for e in self.events:
            if e.pipe is pipe and e.tag:
                busy[e.tag] += e.cycles
        return dict(busy)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        self.events.extend(events)
