"""Execution traces: what ran where, when, and how many bytes it moved.

The analysis harness consumes traces to reproduce the paper's per-layer
figures: cube/vector busy-cycle ratios (Figures 4-8) and L1 bandwidth
profiles (Figure 9).

Storage is *columnar*: one growable arena of parallel numpy arrays
(program index, pipe, start, end, interned tag id, move route and byte
counts) instead of a Python list of event objects.  Every aggregate
query — ``total_cycles``, ``busy_cycles``, ``span``, L1/GM traffic,
per-tag breakdowns — is a masked reduction over those columns, and the
schedulers emit into the arena directly (:meth:`ExecutionTrace.
from_columns`), so no per-event Python objects exist on the hot path.
:class:`TraceEvent` survives as a lazy *view*: ``trace.events`` is a
sequence that materializes events on demand for consumers that want the
row-oriented picture (functional replay debugging, tests, examples).

Tag strings are interned per trace: the arena stores an ``int32`` id per
event plus one shared table of distinct tag strings, so a full BERT
trace holds each layer tag once rather than once per event.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    WaitFlag,
)
from ..isa.memref import MemSpace
from ..isa.pipes import Pipe

__all__ = ["TraceEvent", "ExecutionTrace", "TraceSummary"]

_MOVE_TYPES = (CopyInstr, Img2ColInstr, TransposeInstr, DecompressInstr)

# Instruction-class codes stored in the ``kind`` column.  They drive the
# functional dispatch and the gantt payload filter without isinstance
# checks per event.
KIND_NONE = 0  # flags, barriers: no architectural state outside the schedule
KIND_CUBE = 1
KIND_VECTOR = 2
KIND_COPY = 3
KIND_IMG2COL = 4
KIND_TRANSPOSE = 5
KIND_DECOMP = 6
KIND_SCALAR = 7

_KIND_OF_TYPE = {
    CubeMatmul: KIND_CUBE,
    VectorInstr: KIND_VECTOR,
    CopyInstr: KIND_COPY,
    Img2ColInstr: KIND_IMG2COL,
    TransposeInstr: KIND_TRANSPOSE,
    DecompressInstr: KIND_DECOMP,
    ScalarInstr: KIND_SCALAR,
}

# Kinds that move bytes between memory spaces (the traffic columns).
_MOVE_KINDS = (KIND_COPY, KIND_IMG2COL, KIND_TRANSPOSE, KIND_DECOMP)

# Kinds with a functional effect on scratchpad/GM state.
FUNCTIONAL_KINDS = (KIND_CUBE, KIND_VECTOR, KIND_COPY, KIND_IMG2COL,
                    KIND_TRANSPOSE, KIND_DECOMP)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One instruction's occupancy of its pipe.

    A frozen, ``__slots__`` value object: traces materialize these lazily
    from the columnar arena, so an event carries no per-instance dict.
    """

    index: int  # program order
    instr: Instruction
    pipe: Pipe
    start: int
    end: int

    @property
    def cycles(self) -> int:
        return self.end - self.start

    @property
    def tag(self) -> str:
        return self.instr.tag


@dataclass(frozen=True)
class TraceSummary:
    """Aggregates of one trace, computed in a single pass (see
    :meth:`ExecutionTrace.summary`)."""

    total_cycles: int
    busy_by_pipe: Tuple[int, ...]  # indexed by int(Pipe)
    l1_read_bytes: int
    l1_write_bytes: int
    gm_read_bytes: int
    gm_write_bytes: int

    def busy_cycles(self, pipe: Pipe) -> int:
        return self.busy_by_pipe[pipe]


class _EventsView(Sequence):
    """Lazy, immutable sequence of :class:`TraceEvent` over the arena.

    Supports ``len``/iteration/indexing/slicing/``==`` like the list it
    replaces; events are built on access and never stored.  Slicing —
    including negative and stepped slices — returns another view over the
    selected rows, so ``trace.events[a:b]`` keeps the lazy, comparable
    sequence semantics of the full view instead of decaying to a plain
    ``list``.
    """

    __slots__ = ("_trace", "_rows")

    def __init__(self, trace: "ExecutionTrace",
                 rows: Optional[np.ndarray] = None) -> None:
        self._trace = trace
        # None = the whole trace; else the selected row ids, in order.
        self._rows = rows

    def _row_ids(self) -> np.ndarray:
        if self._rows is None:
            return np.arange(self._trace._n)
        return self._rows

    def __len__(self) -> int:
        if self._rows is None:
            return self._trace._n
        return len(self._rows)

    def __getitem__(self, i):
        t = self._trace
        if isinstance(i, slice):
            return _EventsView(t, self._row_ids()[i])
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("trace event index out of range")
        if self._rows is not None:
            i = int(self._rows[i])
        return t._event_at(i)

    def __iter__(self):
        t = self._trace
        instrs = t._instrs
        rows = self._row_ids()
        index = t._index[rows].tolist()
        pipes = t._pipe[rows].tolist()
        starts = t._start[rows].tolist()
        ends = t._end[rows].tolist()
        for pos, i in enumerate(rows.tolist()):
            yield TraceEvent(index[pos], instrs[i], Pipe(pipes[pos]),
                             starts[pos], ends[pos])

    def __eq__(self, other) -> bool:
        if isinstance(other, _EventsView):
            if len(self) != len(other):
                return False
            a, b = self._trace, other._trace
            ra, rb = self._row_ids(), other._row_ids()
            return (
                np.array_equal(a._index[ra], b._index[rb])
                and np.array_equal(a._pipe[ra], b._pipe[rb])
                and np.array_equal(a._start[ra], b._start[rb])
                and np.array_equal(a._end[ra], b._end[rb])
                and all(a._instrs[i] == b._instrs[j]
                        for i, j in zip(ra.tolist(), rb.tolist()))
            )
        if isinstance(other, (list, tuple)):
            if len(other) != len(self):
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<events view: {len(self)} events>"


class ExecutionTrace:
    """All events of one program run, with aggregate queries.

    Internally a columnar arena; ``events`` is a lazy row view kept for
    API compatibility.  Aggregates are masked numpy reductions.
    """

    __slots__ = ("_n", "_instrs", "_index", "_pipe", "_start", "_end",
                 "_tag_id", "_kind", "_src_space", "_dst_space",
                 "_src_nbytes", "_dst_nbytes", "_tag_names", "_tag_ids",
                 "_meta_memo", "_flag_cols")

    _INITIAL_CAPACITY = 64

    def __init__(self, events: Optional[Iterable[TraceEvent]] = None) -> None:
        self._n = 0
        self._instrs: List[Instruction] = []
        self._tag_names: List[str] = [""]
        self._tag_ids: Dict[str, int] = {"": 0}
        self._meta_memo: Dict[int, tuple] = {}
        self._flag_cols: Optional[tuple] = None
        self._allocate(self._INITIAL_CAPACITY)
        if events:
            self.extend(events)

    def _allocate(self, capacity: int) -> None:
        self._index = np.empty(capacity, np.int64)
        self._pipe = np.empty(capacity, np.int8)
        self._start = np.empty(capacity, np.int64)
        self._end = np.empty(capacity, np.int64)
        self._tag_id = np.empty(capacity, np.int32)
        self._kind = np.empty(capacity, np.int8)
        self._src_space = np.empty(capacity, np.int8)
        self._dst_space = np.empty(capacity, np.int8)
        self._src_nbytes = np.empty(capacity, np.int64)
        self._dst_nbytes = np.empty(capacity, np.int64)

    def _grow(self) -> None:
        capacity = max(self._INITIAL_CAPACITY, 2 * len(self._index))
        old = {name: getattr(self, name) for name in (
            "_index", "_pipe", "_start", "_end", "_tag_id", "_kind",
            "_src_space", "_dst_space", "_src_nbytes", "_dst_nbytes")}
        self._allocate(capacity)
        n = self._n
        for name, column in old.items():
            getattr(self, name)[:n] = column[:n]

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_columns(cls, instrs: List[Instruction], index, pipe, start, end
                     ) -> "ExecutionTrace":
        """Build a trace directly from scheduler output columns.

        ``instrs`` is the instruction per event *in event order*; the
        numeric columns may be lists or arrays.  This is the scheduler
        hot path: no :class:`TraceEvent` objects are created.
        """
        trace = cls.__new__(cls)
        n = len(instrs)
        trace._n = n
        trace._instrs = instrs
        trace._tag_names = [""]
        trace._tag_ids = {"": 0}
        trace._meta_memo = {}
        trace._flag_cols = None
        trace._index = np.asarray(index, np.int64)
        trace._pipe = np.asarray(pipe, np.int8)
        trace._start = np.asarray(start, np.int64)
        trace._end = np.asarray(end, np.int64)
        trace._fill_meta_columns()
        return trace

    def _fill_meta_columns(self) -> None:
        """Derive tag/kind/traffic columns from the instruction list."""
        memo = self._meta_memo
        memo_get = memo.get
        meta_of = self._meta_of
        tags: List[int] = []
        kinds: List[int] = []
        src_spaces: List[int] = []
        dst_spaces: List[int] = []
        src_nbytes: List[int] = []
        dst_nbytes: List[int] = []
        for instr in self._instrs:
            key = id(instr)
            rec = memo_get(key)
            if rec is None:
                rec = meta_of(instr)
                memo[key] = rec
            kinds.append(rec[0])
            tags.append(rec[1])
            src_spaces.append(rec[2])
            dst_spaces.append(rec[3])
            src_nbytes.append(rec[4])
            dst_nbytes.append(rec[5])
        self._tag_id = np.asarray(tags, np.int32)
        self._kind = np.asarray(kinds, np.int8)
        self._src_space = np.asarray(src_spaces, np.int8)
        self._dst_space = np.asarray(dst_spaces, np.int8)
        self._src_nbytes = np.asarray(src_nbytes, np.int64)
        self._dst_nbytes = np.asarray(dst_nbytes, np.int64)

    def _intern(self, tag: str) -> int:
        tag_id = self._tag_ids.get(tag)
        if tag_id is None:
            tag_id = len(self._tag_names)
            self._tag_ids[tag] = tag_id
            self._tag_names.append(tag)
        return tag_id

    def _meta_of(self, instr: Instruction) -> tuple:
        """(kind, tag id, src space, dst space, src bytes, dst bytes).

        Memoized per instruction *object* by the callers: compiled tile
        loops repeat a handful of distinct instruction objects thousands
        of times, and the arena holds a reference to every memoized
        instruction, so ``id()`` keys cannot alias.
        """
        kind = _KIND_OF_TYPE.get(type(instr), KIND_NONE)
        tag_id = self._intern(instr.tag)
        if kind in _MOVE_KINDS:
            return (kind, tag_id, int(instr.src.space), int(instr.dst.space),
                    instr.src.nbytes, instr.dst.nbytes)
        return (kind, tag_id, -1, -1, 0, 0)

    def append(self, event: TraceEvent) -> None:
        """Append one event to the arena (legacy row-oriented path)."""
        i = self._n
        if i >= len(self._index):
            self._grow()
        instr = event.instr
        memo = self._meta_memo
        key = id(instr)
        rec = memo.get(key)
        if rec is None:
            rec = self._meta_of(instr)
            memo[key] = rec
        self._instrs.append(instr)
        self._index[i] = event.index
        self._pipe[i] = int(event.pipe)
        self._start[i] = event.start
        self._end[i] = event.end
        self._kind[i] = rec[0]
        self._tag_id[i] = rec[1]
        self._src_space[i] = rec[2]
        self._dst_space[i] = rec[3]
        self._src_nbytes[i] = rec[4]
        self._dst_nbytes[i] = rec[5]
        self._n = i + 1
        self._flag_cols = None  # derived flag columns are stale

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.append(event)

    # -- row view -------------------------------------------------------------

    @property
    def events(self) -> _EventsView:
        """Lazy sequence of :class:`TraceEvent` (materialized on access)."""
        return _EventsView(self)

    def _event_at(self, i: int) -> TraceEvent:
        return TraceEvent(int(self._index[i]), self._instrs[i],
                          Pipe(int(self._pipe[i])),
                          int(self._start[i]), int(self._end[i]))

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ExecutionTrace({self._n} events, "
                f"{len(self._tag_names) - 1} tags)")

    # -- aggregate queries (masked reductions) --------------------------------

    @property
    def total_cycles(self) -> int:
        if self._n == 0:
            return 0
        return int(self._end[:self._n].max())

    def busy_cycles(self, pipe: Pipe, tag: Optional[str] = None) -> int:
        """Sum of occupied cycles on a pipe (optionally for one tag).

        Flag/barrier bookkeeping (1-cycle events with no payload) is
        included; it is negligible against real work.
        """
        n = self._n
        if n == 0:
            return 0
        mask = self._pipe[:n] == int(pipe)
        if tag is not None:
            tag_id = self._tag_ids.get(tag)
            if tag_id is None:
                return 0
            mask &= self._tag_id[:n] == tag_id
        return int((self._end[:n][mask] - self._start[:n][mask]).sum())

    def utilization(self, pipe: Pipe) -> float:
        total = self.total_cycles
        if total == 0:
            return 0.0
        return self.busy_cycles(pipe) / total

    def tags(self) -> List[str]:
        """Distinct non-empty tags in first-appearance order.

        The intern table is filled in event order, so it *is* the
        first-appearance order (id 0 is the empty tag).
        """
        return list(self._tag_names[1:])

    def span(self, tag: str) -> Tuple[int, int]:
        """(first start, last end) over events carrying ``tag``."""
        n = self._n
        tag_id = self._tag_ids.get(tag)
        if n == 0 or tag_id is None:
            return (0, 0)
        mask = self._tag_id[:n] == tag_id
        if not mask.any():  # interned via append of a foreign-trace event
            return (0, 0)
        return (int(self._start[:n][mask].min()),
                int(self._end[:n][mask].max()))

    def summary(self) -> "TraceSummary":
        """Makespan, per-pipe busy cycles and L1/GM traffic, vectorized.

        Equivalent to ``total_cycles`` + six ``busy_cycles`` calls +
        ``l1_traffic_bytes`` + ``gm_traffic_bytes`` over the event list.
        """
        n = self._n
        cycles = self._end[:n] - self._start[:n]
        pipes = self._pipe[:n]
        busy = tuple(int(cycles[pipes == p].sum()) for p in range(len(Pipe)))
        src_space = self._src_space[:n]
        dst_space = self._dst_space[:n]
        return TraceSummary(
            total_cycles=self.total_cycles,
            busy_by_pipe=busy,
            l1_read_bytes=int(
                self._src_nbytes[:n][src_space == int(MemSpace.L1)].sum()),
            l1_write_bytes=int(
                self._dst_nbytes[:n][dst_space == int(MemSpace.L1)].sum()),
            gm_read_bytes=int(
                self._dst_nbytes[:n][src_space == int(MemSpace.GM)].sum()),
            gm_write_bytes=int(
                self._src_nbytes[:n][dst_space == int(MemSpace.GM)].sum()),
        )

    # -- bandwidth accounting -------------------------------------------------

    _TAG_ABSENT = object()  # sentinel: tag filter given but never seen

    def _tag_mask(self, tag: Optional[str], n: int):
        """Boolean mask for ``tag``; None means no filter; ``_TAG_ABSENT``
        when the tag was never interned (every masked sum is 0)."""
        if tag is None:
            return None
        tag_id = self._tag_ids.get(tag)
        if tag_id is None:
            return ExecutionTrace._TAG_ABSENT
        return self._tag_id[:n] == tag_id

    def l1_traffic_bytes(self, tag: Optional[str] = None) -> Tuple[int, int]:
        """(bytes read from L1, bytes written to L1) by data movement.

        Reads: L1 -> L0A/L0B/UB feeds (MTE1).  Writes: inbound GM -> L1
        (MTE2) and UB -> L1 write-backs (MTE3).  This is the quantity
        Figure 9 profiles.
        """
        n = self._n
        selector = self._tag_mask(tag, n)
        if selector is ExecutionTrace._TAG_ABSENT:
            return (0, 0)
        l1 = int(MemSpace.L1)
        read_mask = self._src_space[:n] == l1
        write_mask = self._dst_space[:n] == l1
        if selector is not None:
            read_mask &= selector
            write_mask &= selector
        return (int(self._src_nbytes[:n][read_mask].sum()),
                int(self._dst_nbytes[:n][write_mask].sum()))

    def moved_bytes(self, src: MemSpace, dst: MemSpace,
                    tag: Optional[str] = None) -> int:
        """Bytes moved along one (src, dst) space pair."""
        n = self._n
        selector = self._tag_mask(tag, n)
        if selector is ExecutionTrace._TAG_ABSENT:
            return 0
        mask = (self._src_space[:n] == int(src)) \
            & (self._dst_space[:n] == int(dst))
        if selector is not None:
            mask &= selector
        column = self._src_nbytes if src is not MemSpace.GM else self._dst_nbytes
        return int(column[:n][mask].sum())

    def gm_traffic_bytes(self, tag: Optional[str] = None) -> Tuple[int, int]:
        """(bytes read from GM, bytes written to GM) — BIU/LLC traffic."""
        n = self._n
        selector = self._tag_mask(tag, n)
        if selector is ExecutionTrace._TAG_ABSENT:
            return (0, 0)
        gm = int(MemSpace.GM)
        read_mask = self._src_space[:n] == gm
        write_mask = self._dst_space[:n] == gm
        if selector is not None:
            read_mask &= selector
            write_mask &= selector
        return (int(self._dst_nbytes[:n][read_mask].sum()),
                int(self._src_nbytes[:n][write_mask].sum()))

    def traffic_by_tag(self) -> Dict[str, Tuple[int, int, int, int]]:
        """Per-tag ``(l1_read, l1_write, gm_read, gm_write)`` bytes.

        A *complete partition* of the summary totals: every event lands
        in exactly one bucket, with untagged events under the ``""`` key,
        so summing any column over the returned dict equals the matching
        :meth:`summary` total.  (``tags()`` deliberately excludes the
        empty tag; per-tag consumers that dropped the untagged bucket
        used to under-report traffic against the single-pass summary —
        the equivalence is now pinned by tests.)

        Buckets are keyed by tag name in first-appearance order; only
        tags that actually carry events appear.
        """
        n = self._n
        if n == 0:
            return {}
        tag_ids = self._tag_id[:n]
        n_tags = len(self._tag_names)
        sums = np.zeros((4, n_tags), np.int64)
        l1 = int(MemSpace.L1)
        gm = int(MemSpace.GM)
        src_space = self._src_space[:n]
        dst_space = self._dst_space[:n]
        for row, (space_col, byte_col) in enumerate((
                (src_space == l1, self._src_nbytes),   # read from L1
                (dst_space == l1, self._dst_nbytes),   # written to L1
                (src_space == gm, self._dst_nbytes),   # read from GM
                (dst_space == gm, self._src_nbytes))):  # written to GM
            mask = space_col
            np.add.at(sums[row], tag_ids[mask], byte_col[:n][mask])
        distinct, first = np.unique(tag_ids, return_index=True)
        names = self._tag_names
        return {
            names[tag_id]: tuple(int(sums[row, tag_id]) for row in range(4))
            for tag_id in distinct[np.argsort(first)]
        }

    # -- flag-channel columns ---------------------------------------------------

    def flag_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(wait mask, set mask, packed channel) columns, derived lazily.

        The arena does not store flag metadata per event; this derives it
        once from the instruction list (memoized per distinct instruction
        object, so compiled tile loops pay one probe per occurrence) and
        caches the result.  ``packed`` holds the
        :func:`~repro.isa.channels.pack_channel` id for flag events and
        -1 elsewhere.  Consumed by the profiling layer (wait histograms,
        Perfetto flow events); appending events invalidates the cache.
        """
        if self._flag_cols is not None:
            return self._flag_cols
        from ..isa.channels import pack_channel

        n = self._n
        wait = np.zeros(n, bool)
        set_ = np.zeros(n, bool)
        packed = np.full(n, -1, np.int64)
        memo: Dict[int, tuple] = {}
        memo_get = memo.get
        for i, instr in enumerate(self._instrs):
            key = id(instr)
            rec = memo_get(key)
            if rec is None:
                cls = type(instr)
                if cls is WaitFlag:
                    rec = (True, False, pack_channel(
                        instr.src_pipe, instr.dst_pipe, instr.event_id))
                elif cls is SetFlag:
                    rec = (False, True, pack_channel(
                        instr.src_pipe, instr.dst_pipe, instr.event_id))
                else:
                    rec = (False, False, -1)
                memo[key] = rec
            if rec[2] >= 0:
                wait[i], set_[i], packed[i] = rec
        self._flag_cols = (wait, set_, packed)
        return self._flag_cols

    def per_tag_busy(self, pipe: Pipe) -> Dict[str, int]:
        n = self._n
        if n == 0:
            return {}
        mask = self._pipe[:n] == int(pipe)
        tag_ids = self._tag_id[:n][mask]
        if tag_ids.size == 0:
            return {}
        cycles = (self._end[:n] - self._start[:n])[mask]
        sums = np.zeros(len(self._tag_names), np.int64)
        np.add.at(sums, tag_ids, cycles)
        # Report tags in first-occurrence order among this pipe's events.
        distinct, first = np.unique(tag_ids, return_index=True)
        names = self._tag_names
        return {
            names[tag_id]: int(sums[tag_id])
            for tag_id in distinct[np.argsort(first)]
            if tag_id != 0
        }

    # -- columnar access ------------------------------------------------------
    #
    # Trimmed views of the arena for vectorized consumers (gantt binning,
    # benchmarks).  Treat them as read-only: they alias trace storage.

    @property
    def indices(self) -> np.ndarray:
        """Program (issue) order per event."""
        return self._index[:self._n]

    @property
    def starts(self) -> np.ndarray:
        return self._start[:self._n]

    @property
    def ends(self) -> np.ndarray:
        return self._end[:self._n]

    @property
    def pipes(self) -> np.ndarray:
        return self._pipe[:self._n]

    @property
    def kinds(self) -> np.ndarray:
        """Instruction-class codes (the module-level ``KIND_*`` constants)."""
        return self._kind[:self._n]

    @property
    def src_spaces(self) -> np.ndarray:
        """Source :class:`~repro.isa.memref.MemSpace` per event (-1: no move)."""
        return self._src_space[:self._n]

    @property
    def dst_spaces(self) -> np.ndarray:
        """Destination memory space per event (-1 for non-moves)."""
        return self._dst_space[:self._n]

    @property
    def src_bytes(self) -> np.ndarray:
        """Bytes read from the source space per event (0 for non-moves)."""
        return self._src_nbytes[:self._n]

    @property
    def dst_bytes(self) -> np.ndarray:
        """Bytes written to the destination space per event (0 for non-moves)."""
        return self._dst_nbytes[:self._n]

    @property
    def tag_ids(self) -> np.ndarray:
        """Interned tag id per event (see :attr:`tag_table`)."""
        return self._tag_id[:self._n]

    @property
    def tag_table(self) -> Tuple[str, ...]:
        """Interned tag strings indexed by :attr:`tag_ids` (id 0 is ``""``)."""
        return tuple(self._tag_names)

    # -- functional-execution support -----------------------------------------

    def functional_instructions(self) -> List[Instruction]:
        """Instructions with architectural effect, in causal order.

        Flags, barriers and scalar bookkeeping carry no state outside the
        schedule, so functional replay skips them.
        """
        n = self._n
        kinds = self._kind[:n]
        instrs = self._instrs
        return [instrs[i]
                for i in np.nonzero(np.isin(kinds, FUNCTIONAL_KINDS))[0]]

    def n_functional(self) -> int:
        """Count of functional instructions, without materializing them."""
        return int(np.isin(self._kind[:self._n], FUNCTIONAL_KINDS).sum())

    def wavefronts(self) -> List[List[Instruction]]:
        """Group functional instructions into dependence-free waves.

        Events are stored sorted by start time, and any dependence chain
        (same-pipe program order or a set_flag -> wait_flag edge) forces
        the consumer to start at or after the producer's end.  Walking
        events in start order, an event whose start lies strictly before
        the minimum end of the current wave therefore overlaps every
        event in it — no dependence edge can exist between them — so it
        joins the wave; otherwise the wave is sealed and a new one
        begins.  Waves execute in order with a barrier between them,
        preserving every producer -> consumer edge.
        """
        n = self._n
        if n == 0:
            return []
        keep = np.nonzero(np.isin(self._kind[:n], FUNCTIONAL_KINDS))[0]
        if keep.size == 0:
            return []
        starts = self._start[:n][keep].tolist()
        ends = self._end[:n][keep].tolist()
        instrs = self._instrs
        waves: List[List[Instruction]] = []
        wave: List[Instruction] = [instrs[keep[0]]]
        wave_min_end = ends[0]
        for pos in range(1, keep.size):
            start = starts[pos]
            instr = instrs[keep[pos]]
            if start < wave_min_end:
                wave.append(instr)
                if ends[pos] < wave_min_end:
                    wave_min_end = ends[pos]
            else:
                waves.append(wave)
                wave = [instr]
                wave_min_end = ends[pos]
        waves.append(wave)
        return waves
