"""Instruction cycle-cost model, parameterized by a core design point.

Cost anchors (Section 2.1 / Table 5):

* the cube retires one native m0 x k0 x n0 tile-MAC per cycle when fed;
  int8 doubles and int4 quadruples the k dimension on fp16 cores
  ("can extend to 16x32x16 with int8 precision");
* the vector unit processes ``vector_width_bytes`` per cycle per pass,
  with transcendentals costing multiple passes;
* MTE moves are bounded by the Table 5 bus widths (see
  :class:`~repro.memory.bandwidth.DatapathModel`).
"""

from __future__ import annotations

import math

import numpy as np

from ..config.core_configs import CoreConfig
from ..errors import IsaError
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    PipeBarrier,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from ..isa.memref import MemSpace
from ..memory.bandwidth import DatapathModel

__all__ = ["CostModel"]

_CUBE_STARTUP = 4
_VEC_STARTUP = 2
_FLAG_COST = 1

# Exact-type dispatch classes for the two most frequent cost shapes:
# 1 = bus move priced by the datapath, 2 = unit-cost synchronization.
_COST_KIND = {
    CopyInstr: 1,
    Img2ColInstr: 1,
    TransposeInstr: 1,
    DecompressInstr: 1,
    SetFlag: 2,
    WaitFlag: 2,
    PipeBarrier: 2,
}

# Columnar lookups for cost_columns: vector passes by vop id, plus the
# two vop ids with the L0C special case.
_VOP_PASSES = np.array([op.passes for op in VectorOpcode], np.int64)
_VOP_COPY = list(VectorOpcode).index(VectorOpcode.COPY)
_VOP_CAST = list(VectorOpcode).index(VectorOpcode.CAST)


_COLUMN_MEMO_CAP = 512


class CostModel:
    """Maps instructions to cycle costs for one :class:`CoreConfig`."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.datapath = DatapathModel(config)
        # GEMM tile shapes repeat across a compiled graph; price each
        # distinct (m, k, n, dtype) once.
        self._cube_memo: dict = {}
        # Whole-arena cost columns repeat too: retagged memo siblings
        # share every priced column, so one pricing serves all of them.
        # Keyed by column identity; the stored arena reference pins the
        # ids so they cannot be recycled while the entry lives.
        self._column_memo: dict = {}

    # -- cube -----------------------------------------------------------------

    def cube_tile_shape(self, dtype) -> tuple:
        """Native cube (m0, k0, n0) for a source dtype on this core.

        The k dimension scales with precision on fp16-baseline cubes:
        int8 doubles it, int4 quadruples it, and fp32 (the Section 7.2
        extension) halves it.
        """
        if not self.config.supports_dtype(dtype):
            raise IsaError(f"{self.config.name} cube does not support {dtype}")
        shape = self.config.cube
        k_scale = 1.0
        if self.config.cube_dtypes[0].name == "fp16":
            k_scale = {"int8": 2.0, "int4": 4.0, "fp32": 0.5}.get(
                dtype.name, 1.0)
        return (shape.m, max(1, int(shape.k * k_scale)), shape.n)

    def cube_cycles(self, m: int, k: int, n: int, dtype) -> int:
        key = (m, k, n, dtype.name)
        cycles = self._cube_memo.get(key)
        if cycles is None:
            m0, k0, n0 = self.cube_tile_shape(dtype)
            tiles = math.ceil(m / m0) * math.ceil(k / k0) * math.ceil(n / n0)
            cycles = _CUBE_STARTUP + tiles
            self._cube_memo[key] = cycles
        return cycles

    # -- vector ---------------------------------------------------------------

    def vector_cycles(self, elems: int, elem_bytes: float, passes: int = 1) -> int:
        per_pass = math.ceil(elems * elem_bytes / self.config.vector_width_bytes)
        return _VEC_STARTUP + per_pass * passes

    # -- dispatch -------------------------------------------------------------

    def cost_table(self, instrs) -> list:
        """Per-instruction costs for a whole program in one pass.

        Compiled tile loops repeat a handful of distinct instruction
        objects thousands of times (flags are interned by the lowerer;
        repeated GEMMs share sub-program objects), so costs are memoized
        per instruction *object* — each distinct object is priced once.
        """
        memo: dict = {}
        memo_get = memo.get
        cost = self.cost
        table = []
        append = table.append
        for instr in instrs:
            key = id(instr)
            c = memo_get(key)
            if c is None:
                c = cost(instr)
                memo[key] = c
            append(c)
        return table

    def cost_columns(self, arena) -> np.ndarray:
        """Per-row cycle costs for a whole arena, fully vectorized.

        Equal row-for-row to ``[self.cost(i) for i in materialize()]``
        (asserted by tests): the ceil-of-float-division expressions below
        are the *same* float64 divisions :meth:`cost` performs, so no
        integer-vs-float rounding divergence is possible.  Works on
        inexact arenas too — every priced quantity (cycles, nbytes, elems)
        is column-encoded even for rows whose full semantics are not.
        """
        from ..isa.arena import _COLUMN_NAMES, DTYPE_BITS, DTYPE_TABLE
        from ..isa.instructions import (
            OP_BARRIER,
            OP_COPY,
            OP_CUBE,
            OP_DECOMP,
            OP_IMG2COL,
            OP_SCALAR,
            OP_SET,
            OP_TRANSPOSE,
            OP_VECTOR,
            OP_WAIT,
        )
        priced_cols = tuple(c for c in _COLUMN_NAMES if c != "tag_id")
        hit = self._column_memo.get(id(arena.kind))
        if (hit is not None
                and all(getattr(hit[0], c) is getattr(arena, c)
                        for c in priced_cols)):
            return hit[1]
        kind = arena.kind
        cost = np.zeros(arena.n, np.int64)
        cost[(kind == OP_SET) | (kind == OP_WAIT)
             | (kind == OP_BARRIER)] = _FLAG_COST
        sc = kind == OP_SCALAR
        if sc.any():
            cost[sc] = arena.misc[sc]

        mv = ((kind == OP_COPY) | (kind == OP_IMG2COL)
              | (kind == OP_TRANSPOSE) | (kind == OP_DECOMP))
        if mv.any():
            # Img2Col charges its (expanded) destination; the other moves
            # charge their source (Instruction.nbytes).
            nb = np.where(kind[mv] == OP_IMG2COL,
                          arena.nbytes[mv, 0], arena.nbytes[mv, 1])
            width = self.datapath.width_matrix()[
                arena.r_space[mv, 1], arena.r_space[mv, 0]]
            c = (self.datapath.TRANSFER_OVERHEAD_CYCLES
                 + np.ceil(nb / width).astype(np.int64))
            c[nb <= 0] = self.datapath.TRANSFER_OVERHEAD_CYCLES
            cost[mv] = c

        cb = kind == OP_CUBE
        if cb.any():
            m = arena.r_d0[cb, 1]
            k = arena.r_d1[cb, 1]
            n = arena.r_d1[cb, 2]
            dts = arena.r_dtype[cb, 1]
            c = np.zeros(m.size, np.int64)
            for dti in np.unique(dts):
                m0, k0, n0 = self.cube_tile_shape(DTYPE_TABLE[dti])
                sel = dts == dti
                tiles = (np.ceil(m[sel] / m0) * np.ceil(k[sel] / k0)
                         * np.ceil(n[sel] / n0))
                c[sel] = _CUBE_STARTUP + tiles.astype(np.int64)
            cost[cb] = c

        vec = kind == OP_VECTOR
        if vec.any():
            has_src = arena.r_space[vec, 1] >= 0
            slot = np.where(has_src, 1, 0)
            rows = np.nonzero(vec)[0]
            elems = arena.elems[rows, slot].astype(np.float64)
            elem_bytes = DTYPE_BITS[arena.r_dtype[rows, slot]] / 8.0
            vops = arena.vop[vec]
            passes = _VOP_PASSES[vops]
            per_pass = np.ceil(
                elems * elem_bytes / self.config.vector_width_bytes)
            c = _VEC_STARTUP + (per_pass * passes).astype(np.int64)
            l0c = int(MemSpace.L0C)
            special = (((vops == _VOP_COPY) | (vops == _VOP_CAST))
                       & ((arena.r_space[vec] == l0c).any(axis=1)))
            if special.any():
                ub = np.ceil(elems[special] * elem_bytes[special]
                             / self.config.ub_bytes_per_cycle)
                c[special] = _VEC_STARTUP + ub.astype(np.int64)
            cost[vec] = c
        # Freeze before memoizing: any in-place mutation by a future
        # caller would silently poison every sharer — raising is better.
        cost.flags.writeable = False
        self._column_memo[id(arena.kind)] = (arena, cost)
        while len(self._column_memo) > _COLUMN_MEMO_CAP:
            self._column_memo.pop(next(iter(self._column_memo)))
        return cost

    def cost(self, instr: Instruction) -> int:
        """Cycles the instruction occupies its pipe."""
        # Exact-type fast path (every ISA class is final in practice);
        # the isinstance chain below remains as the subclass fallback.
        kind = _COST_KIND.get(type(instr))
        if kind == 1:
            return self.datapath.cycles_for(
                instr.src.space, instr.dst.space, instr.nbytes)
        if kind == 2:
            return _FLAG_COST
        if isinstance(instr, CubeMatmul):
            return self.cube_cycles(instr.m, instr.k, instr.n, instr.a.dtype)
        if isinstance(instr, VectorInstr):
            elem_bytes = (instr.srcs[0].dtype if instr.srcs else instr.dst.dtype).bytes
            if instr.op in (VectorOpcode.COPY, VectorOpcode.CAST) and (
                instr.dst.space is MemSpace.L0C
                or any(s.space is MemSpace.L0C for s in instr.srcs)
            ):
                # Moving cube results L0C <-> UB rides the wide UB port
                # (Table 5's UB bus), not the vector ALU datapath.
                nbytes = instr.elems * elem_bytes
                return _VEC_STARTUP + math.ceil(
                    nbytes / self.config.ub_bytes_per_cycle
                )
            return self.vector_cycles(instr.elems, elem_bytes, instr.op.passes)
        if isinstance(instr, (CopyInstr, Img2ColInstr, TransposeInstr, DecompressInstr)):
            src, dst = instr.src.space, instr.dst.space
            return self.datapath.cycles_for(src, dst, instr.nbytes)
        if isinstance(instr, ScalarInstr):
            return instr.cycles
        if isinstance(instr, (SetFlag, WaitFlag, PipeBarrier)):
            return _FLAG_COST
        raise IsaError(f"no cost model for {type(instr).__name__}")
