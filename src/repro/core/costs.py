"""Instruction cycle-cost model, parameterized by a core design point.

Cost anchors (Section 2.1 / Table 5):

* the cube retires one native m0 x k0 x n0 tile-MAC per cycle when fed;
  int8 doubles and int4 quadruples the k dimension on fp16 cores
  ("can extend to 16x32x16 with int8 precision");
* the vector unit processes ``vector_width_bytes`` per cycle per pass,
  with transcendentals costing multiple passes;
* MTE moves are bounded by the Table 5 bus widths (see
  :class:`~repro.memory.bandwidth.DatapathModel`).
"""

from __future__ import annotations

import math

from ..config.core_configs import CoreConfig
from ..errors import IsaError
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    PipeBarrier,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from ..isa.memref import MemSpace
from ..memory.bandwidth import DatapathModel

__all__ = ["CostModel"]

_CUBE_STARTUP = 4
_VEC_STARTUP = 2
_FLAG_COST = 1


class CostModel:
    """Maps instructions to cycle costs for one :class:`CoreConfig`."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.datapath = DatapathModel(config)

    # -- cube -----------------------------------------------------------------

    def cube_tile_shape(self, dtype) -> tuple:
        """Native cube (m0, k0, n0) for a source dtype on this core.

        The k dimension scales with precision on fp16-baseline cubes:
        int8 doubles it, int4 quadruples it, and fp32 (the Section 7.2
        extension) halves it.
        """
        if not self.config.supports_dtype(dtype):
            raise IsaError(f"{self.config.name} cube does not support {dtype}")
        shape = self.config.cube
        k_scale = 1.0
        if self.config.cube_dtypes[0].name == "fp16":
            k_scale = {"int8": 2.0, "int4": 4.0, "fp32": 0.5}.get(
                dtype.name, 1.0)
        return (shape.m, max(1, int(shape.k * k_scale)), shape.n)

    def cube_cycles(self, m: int, k: int, n: int, dtype) -> int:
        m0, k0, n0 = self.cube_tile_shape(dtype)
        tiles = math.ceil(m / m0) * math.ceil(k / k0) * math.ceil(n / n0)
        return _CUBE_STARTUP + tiles

    # -- vector ---------------------------------------------------------------

    def vector_cycles(self, elems: int, elem_bytes: float, passes: int = 1) -> int:
        per_pass = math.ceil(elems * elem_bytes / self.config.vector_width_bytes)
        return _VEC_STARTUP + per_pass * passes

    # -- dispatch -------------------------------------------------------------

    def cost(self, instr: Instruction) -> int:
        """Cycles the instruction occupies its pipe."""
        if isinstance(instr, CubeMatmul):
            return self.cube_cycles(instr.m, instr.k, instr.n, instr.a.dtype)
        if isinstance(instr, VectorInstr):
            elem_bytes = (instr.srcs[0].dtype if instr.srcs else instr.dst.dtype).bytes
            if instr.op in (VectorOpcode.COPY, VectorOpcode.CAST) and (
                instr.dst.space is MemSpace.L0C
                or any(s.space is MemSpace.L0C for s in instr.srcs)
            ):
                # Moving cube results L0C <-> UB rides the wide UB port
                # (Table 5's UB bus), not the vector ALU datapath.
                nbytes = instr.elems * elem_bytes
                return _VEC_STARTUP + math.ceil(
                    nbytes / self.config.ub_bytes_per_cycle
                )
            return self.vector_cycles(instr.elems, elem_bytes, instr.op.passes)
        if isinstance(instr, (CopyInstr, Img2ColInstr, TransposeInstr, DecompressInstr)):
            src, dst = instr.src.space, instr.dst.space
            return self.datapath.cycles_for(src, dst, instr.nbytes)
        if isinstance(instr, ScalarInstr):
            return instr.cycles
        if isinstance(instr, (SetFlag, WaitFlag, PipeBarrier)):
            return _FLAG_COST
        raise IsaError(f"no cost model for {type(instr).__name__}")
