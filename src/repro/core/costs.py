"""Instruction cycle-cost model, parameterized by a core design point.

Cost anchors (Section 2.1 / Table 5):

* the cube retires one native m0 x k0 x n0 tile-MAC per cycle when fed;
  int8 doubles and int4 quadruples the k dimension on fp16 cores
  ("can extend to 16x32x16 with int8 precision");
* the vector unit processes ``vector_width_bytes`` per cycle per pass,
  with transcendentals costing multiple passes;
* MTE moves are bounded by the Table 5 bus widths (see
  :class:`~repro.memory.bandwidth.DatapathModel`).
"""

from __future__ import annotations

import math

from ..config.core_configs import CoreConfig
from ..errors import IsaError
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    PipeBarrier,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from ..isa.memref import MemSpace
from ..memory.bandwidth import DatapathModel

__all__ = ["CostModel"]

_CUBE_STARTUP = 4
_VEC_STARTUP = 2
_FLAG_COST = 1

# Exact-type dispatch classes for the two most frequent cost shapes:
# 1 = bus move priced by the datapath, 2 = unit-cost synchronization.
_COST_KIND = {
    CopyInstr: 1,
    Img2ColInstr: 1,
    TransposeInstr: 1,
    DecompressInstr: 1,
    SetFlag: 2,
    WaitFlag: 2,
    PipeBarrier: 2,
}


class CostModel:
    """Maps instructions to cycle costs for one :class:`CoreConfig`."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.datapath = DatapathModel(config)
        # GEMM tile shapes repeat across a compiled graph; price each
        # distinct (m, k, n, dtype) once.
        self._cube_memo: dict = {}

    # -- cube -----------------------------------------------------------------

    def cube_tile_shape(self, dtype) -> tuple:
        """Native cube (m0, k0, n0) for a source dtype on this core.

        The k dimension scales with precision on fp16-baseline cubes:
        int8 doubles it, int4 quadruples it, and fp32 (the Section 7.2
        extension) halves it.
        """
        if not self.config.supports_dtype(dtype):
            raise IsaError(f"{self.config.name} cube does not support {dtype}")
        shape = self.config.cube
        k_scale = 1.0
        if self.config.cube_dtypes[0].name == "fp16":
            k_scale = {"int8": 2.0, "int4": 4.0, "fp32": 0.5}.get(
                dtype.name, 1.0)
        return (shape.m, max(1, int(shape.k * k_scale)), shape.n)

    def cube_cycles(self, m: int, k: int, n: int, dtype) -> int:
        key = (m, k, n, dtype.name)
        cycles = self._cube_memo.get(key)
        if cycles is None:
            m0, k0, n0 = self.cube_tile_shape(dtype)
            tiles = math.ceil(m / m0) * math.ceil(k / k0) * math.ceil(n / n0)
            cycles = _CUBE_STARTUP + tiles
            self._cube_memo[key] = cycles
        return cycles

    # -- vector ---------------------------------------------------------------

    def vector_cycles(self, elems: int, elem_bytes: float, passes: int = 1) -> int:
        per_pass = math.ceil(elems * elem_bytes / self.config.vector_width_bytes)
        return _VEC_STARTUP + per_pass * passes

    # -- dispatch -------------------------------------------------------------

    def cost_table(self, instrs) -> list:
        """Per-instruction costs for a whole program in one pass.

        Compiled tile loops repeat a handful of distinct instruction
        objects thousands of times (flags are interned by the lowerer;
        repeated GEMMs share sub-program objects), so costs are memoized
        per instruction *object* — each distinct object is priced once.
        """
        memo: dict = {}
        memo_get = memo.get
        cost = self.cost
        table = []
        append = table.append
        for instr in instrs:
            key = id(instr)
            c = memo_get(key)
            if c is None:
                c = cost(instr)
                memo[key] = c
            append(c)
        return table

    def cost(self, instr: Instruction) -> int:
        """Cycles the instruction occupies its pipe."""
        # Exact-type fast path (every ISA class is final in practice);
        # the isinstance chain below remains as the subclass fallback.
        kind = _COST_KIND.get(type(instr))
        if kind == 1:
            return self.datapath.cycles_for(
                instr.src.space, instr.dst.space, instr.nbytes)
        if kind == 2:
            return _FLAG_COST
        if isinstance(instr, CubeMatmul):
            return self.cube_cycles(instr.m, instr.k, instr.n, instr.a.dtype)
        if isinstance(instr, VectorInstr):
            elem_bytes = (instr.srcs[0].dtype if instr.srcs else instr.dst.dtype).bytes
            if instr.op in (VectorOpcode.COPY, VectorOpcode.CAST) and (
                instr.dst.space is MemSpace.L0C
                or any(s.space is MemSpace.L0C for s in instr.srcs)
            ):
                # Moving cube results L0C <-> UB rides the wide UB port
                # (Table 5's UB bus), not the vector ALU datapath.
                nbytes = instr.elems * elem_bytes
                return _VEC_STARTUP + math.ceil(
                    nbytes / self.config.ub_bytes_per_cycle
                )
            return self.vector_cycles(instr.elems, elem_bytes, instr.op.passes)
        if isinstance(instr, (CopyInstr, Img2ColInstr, TransposeInstr, DecompressInstr)):
            src, dst = instr.src.space, instr.dst.space
            return self.datapath.cycles_for(src, dst, instr.nbytes)
        if isinstance(instr, ScalarInstr):
            return instr.cycles
        if isinstance(instr, (SetFlag, WaitFlag, PipeBarrier)):
            return _FLAG_COST
        raise IsaError(f"no cost model for {type(instr).__name__}")
