"""Functional model of the Memory Transfer Engine (Section 2.2).

Four behaviours: plain copies along the legal datapath routes, *img2col*
(convolution-to-GEMM expansion), *trans* (matrix transpose on the way
into L0), and *decomp* (zero-value decompression of sparse data).
"""

from __future__ import annotations

import numpy as np

from ..errors import IsaError
from ..isa.instructions import (
    CopyInstr,
    DecompressInstr,
    Img2ColInstr,
    TransposeInstr,
)
from ..memory.hierarchy import CoreMemory
from ..memory.zvc import zvc_decompress

__all__ = ["execute_copy", "execute_img2col", "execute_transpose", "execute_decompress", "im2col_array"]


def execute_copy(instr: CopyInstr, memory: CoreMemory) -> None:
    values = memory.read(instr.src)
    if instr.dst.dtype is not instr.src.dtype:
        raise IsaError("CopyInstr cannot convert dtypes; use a vector CAST")
    memory.write(instr.dst, values.reshape(instr.dst.shape))


def im2col_array(image: np.ndarray, kernel, stride, padding) -> np.ndarray:
    """Reference im2col on an (H, W, C) array -> (oh*ow, kh*kw*C).

    Column order is (kh, kw, c) fastest-to-slowest consistent with the
    weight layout the compiler emits, so ``im2col(A) @ W`` equals the
    direct convolution.
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    h, w, c = image.shape
    padded = np.pad(image, ((ph, ph), (pw, pw), (0, 0)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    out = np.empty((oh * ow, kh * kw * c), dtype=image.dtype)
    row = 0
    for i in range(oh):
        for j in range(ow):
            patch = padded[i * sh : i * sh + kh, j * sw : j * sw + kw, :]
            out[row] = patch.reshape(-1)
            row += 1
    return out


def execute_img2col(instr: Img2ColInstr, memory: CoreMemory) -> None:
    image = memory.read(instr.src)
    matrix = im2col_array(image, instr.kernel, instr.stride, instr.padding)
    memory.write(instr.dst, matrix)


def execute_transpose(instr: TransposeInstr, memory: CoreMemory) -> None:
    memory.write(instr.dst, memory.read(instr.src).T)


def execute_decompress(instr: DecompressInstr, memory: CoreMemory) -> None:
    stream = memory.read(instr.src).view(np.uint8).ravel()
    dense = zvc_decompress(stream, instr.dst.shape, instr.dst.dtype.np_dtype)
    memory.write(instr.dst, dense)
