"""Functional model of the 3D cube computing unit (Section 2.1).

The cube consumes an A tile from L0A and a B tile from L0B and produces
(or accumulates into) a C tile in L0C.  Sources are fp16/int8/int4;
accumulation is fp32/int32 — the mixed-precision contract the paper
adopts from Micikevicius et al.
"""

from __future__ import annotations

import numpy as np

from ..isa.instructions import CubeMatmul
from ..memory.hierarchy import CoreMemory

__all__ = ["execute_cube"]


def execute_cube(instr: CubeMatmul, memory: CoreMemory) -> None:
    """Run one cube matmul against the scratchpads."""
    a = memory.read(instr.a)
    b = memory.read(instr.b)
    if instr.a.dtype.is_float:
        # fp16 multiplies with fp32 accumulation: promote before the dot.
        product = a.astype(np.float32) @ b.astype(np.float32)
    else:
        product = a.astype(np.int32) @ b.astype(np.int32)
    if instr.accumulate:
        product = memory.read(instr.c) + product
    memory.write(instr.c, product.astype(instr.c.dtype.np_dtype))
