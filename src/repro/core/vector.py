"""Functional model of the vector computing unit (Section 2.1, Table 2).

Covers normalization/activation arithmetic, precision conversion
(quantize/dequantize/cast), reductions, backward-pass selects, and the
automotive CV/SLAM extensions of Section 3.3.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import dequantize, quantize
from ..errors import IsaError
from ..isa.instructions import VectorInstr, VectorOpcode
from ..memory.hierarchy import CoreMemory

__all__ = ["execute_vector"]


def _binary(op, a, b):
    # Compute in fp32 to mirror the unit's internal precision, then let the
    # destination write cast back down.
    return op(a.astype(np.float32), b.astype(np.float32))


def execute_vector(instr: VectorInstr, memory: CoreMemory) -> None:
    """Run one vector instruction against the scratchpads."""
    srcs = [memory.read(region) for region in instr.srcs]
    op = instr.op
    out: np.ndarray

    if op is VectorOpcode.COPY:
        out = srcs[0]
    elif op is VectorOpcode.ADD:
        out = _binary(np.add, srcs[0], srcs[1])
    elif op is VectorOpcode.SUB:
        out = _binary(np.subtract, srcs[0], srcs[1])
    elif op is VectorOpcode.MUL:
        out = _binary(np.multiply, srcs[0], srcs[1])
    elif op is VectorOpcode.DIV:
        out = _binary(np.divide, srcs[0], srcs[1])
    elif op is VectorOpcode.MAX:
        out = _binary(np.maximum, srcs[0], srcs[1])
    elif op is VectorOpcode.MIN:
        out = _binary(np.minimum, srcs[0], srcs[1])
    elif op is VectorOpcode.ADDS:
        out = srcs[0].astype(np.float32) + instr.scalar
    elif op is VectorOpcode.MULS:
        out = srcs[0].astype(np.float32) * instr.scalar
    elif op is VectorOpcode.RELU:
        out = np.maximum(srcs[0].astype(np.float32), 0.0)
    elif op is VectorOpcode.ABS:
        out = np.abs(srcs[0])
    elif op is VectorOpcode.NEG:
        out = -srcs[0].astype(np.float32)
    elif op is VectorOpcode.EXP:
        out = np.exp(srcs[0].astype(np.float32))
    elif op is VectorOpcode.LOG:
        out = np.log(srcs[0].astype(np.float32))
    elif op is VectorOpcode.SQRT:
        out = np.sqrt(srcs[0].astype(np.float32))
    elif op is VectorOpcode.RSQRT:
        out = 1.0 / np.sqrt(srcs[0].astype(np.float32))
    elif op is VectorOpcode.RECIP:
        out = 1.0 / srcs[0].astype(np.float32)
    elif op is VectorOpcode.TANH:
        out = np.tanh(srcs[0].astype(np.float32))
    elif op is VectorOpcode.SIGMOID:
        out = 1.0 / (1.0 + np.exp(-srcs[0].astype(np.float32)))
    elif op is VectorOpcode.GELU:
        x = srcs[0].astype(np.float32)
        out = 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))
    elif op is VectorOpcode.CAST:
        out = srcs[0]
    elif op is VectorOpcode.QUANTIZE:
        zero_point = int(instr.params.get("zero_point", 0))
        memory.write(
            instr.dst, quantize(srcs[0], instr.dst.dtype, instr.scalar, zero_point)
        )
        return
    elif op is VectorOpcode.DEQUANTIZE:
        zero_point = int(instr.params.get("zero_point", 0))
        memory.write(
            instr.dst,
            dequantize(srcs[0], instr.scalar, zero_point, instr.dst.dtype),
        )
        return
    elif op is VectorOpcode.REDUCE_SUM:
        out = _reduce(srcs[0], instr, np.sum)
    elif op is VectorOpcode.REDUCE_MAX:
        out = _reduce(srcs[0], instr, np.max)
    elif op is VectorOpcode.SELECT_GE:
        cond = srcs[0].astype(np.float32) >= 0
        out = np.where(cond, srcs[1].astype(np.float32), srcs[2].astype(np.float32))
    elif op is VectorOpcode.SORT:
        out = np.sort(srcs[0].astype(np.float32).ravel())[::-1].reshape(instr.dst.shape)
    elif op is VectorOpcode.QUATERNION_MUL:
        out = _quaternion_mul(srcs[0], srcs[1])
    elif op is VectorOpcode.CLUSTER_ASSIGN:
        out = _cluster_assign(srcs[0], srcs[1], instr)
    else:  # pragma: no cover - enum is closed
        raise IsaError(f"unimplemented vector opcode {op}")

    memory.write(instr.dst, out.astype(instr.dst.dtype.np_dtype).reshape(instr.dst.shape))


def _reduce(src: np.ndarray, instr: VectorInstr, fn) -> np.ndarray:
    """Reduce over the last axis (row-wise), the common NN reduction."""
    if src.ndim == 1:
        return np.asarray([fn(src.astype(np.float32))])
    return fn(src.astype(np.float32), axis=-1).reshape(instr.dst.shape)


def _quaternion_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Hamilton product over (..., 4) arrays — the SLAM quaternion op."""
    a = a.astype(np.float32).reshape(-1, 4)
    b = b.astype(np.float32).reshape(-1, 4)
    w1, x1, y1, z1 = a.T
    w2, x2, y2, z2 = b.T
    return np.stack(
        [
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        ],
        axis=-1,
    )


def _cluster_assign(points: np.ndarray, centroids: np.ndarray,
                    instr: VectorInstr) -> np.ndarray:
    """Nearest-centroid assignment — the SLAM clustering instruction.

    ``points`` is (n, d), ``centroids`` is (k, d); returns (n,) indices.
    """
    p = points.astype(np.float32).reshape(points.shape[0], -1)
    c = centroids.astype(np.float32).reshape(centroids.shape[0], -1)
    d2 = ((p[:, None, :] - c[None, :, :]) ** 2).sum(axis=-1)
    return np.argmin(d2, axis=1).astype(np.float32)
