"""Event-driven timing engine for the multi-queue execution model.

Figure 3 semantics: the PSQ dispatches instructions *in program order* into
per-pipe in-order queues; pipes run concurrently; a ``wait_flag`` stalls
its pipe until the matching ``set_flag`` retires on the producer pipe.

Two schedulers implement these semantics:

* :func:`schedule_single_pass` (the default) — a dependency-driven O(N)
  pass.  Each pipe keeps a cursor into its queue; a pipe drains until it
  stalls on an empty flag channel, registers itself as the channel's
  waiter, and is re-queued the moment the producing ``set_flag`` retires.
  Flag channels are FIFOs keyed by a packed int (pipes hash as ints),
  and instruction costs are looked up once per distinct instruction
  object via :meth:`CostModel.cost_table`.
* :func:`schedule_fixpoint` — the original rescan-to-fixpoint loop, kept
  as the reference oracle.  ``tests/core/test_engine_equivalence.py``
  asserts both produce bit-identical traces.

Both orderings are work-conserving over the same in-order queues and
single-producer/single-consumer FIFO channels, so start/end times are
schedule-order independent — the traces they produce are identical.

A program whose waits can never be satisfied raises
:class:`~repro.errors.DeadlockError` — the same programs hang real
silicon, so surfacing them loudly is a feature.  Set ``REPRO_SCHEDULER=
fixpoint`` to force the legacy scheduler globally.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..config.env import env_choice
from ..errors import DeadlockError
from ..isa.channels import pack_channel
from ..isa.instructions import (
    OPCODE_OF,
    CopyInstr,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    SetFlag,
    TransposeInstr,
    WaitFlag,
)
from ..isa.memref import MemSpace
from ..isa.pipes import Pipe
from ..isa.program import Program
from ..profiling.session import active_session
from ..reliability.deadlock import PipeStall, build_report
from ..reliability.injector import active_injector
from .costs import CostModel
from .trace import ExecutionTrace, TraceEvent, TraceSummary

__all__ = [
    "schedule",
    "schedule_single_pass",
    "schedule_summary",
    "schedule_fixpoint",
]

# The PSQ dispatches a bounded number of instructions per cycle; with
# tile-granular instructions this is essentially never the bottleneck,
# but modeling it keeps pathological fine-grained programs honest.
_DISPATCH_PER_CYCLE = 4

_Channel = Tuple[Pipe, Pipe, int]

_N_PIPES = len(Pipe)


def schedule(program: Program, costs: CostModel,
             algorithm: Optional[str] = None) -> ExecutionTrace:
    """Compute start/end cycles for every instruction in ``program``.

    ``algorithm`` selects the scheduler: ``"single-pass"`` (default) or
    ``"fixpoint"`` (the legacy reference oracle).  The ``REPRO_SCHEDULER``
    environment variable overrides the default when no explicit argument
    is given.
    """
    if algorithm is None:
        # Env-sourced values go through the shared parser, which raises a
        # ConfigError naming the variable on invalid input.
        algorithm = env_choice("REPRO_SCHEDULER", "single-pass",
                               ("single-pass", "fast", "fixpoint", "legacy"))
    if algorithm in ("fixpoint", "legacy"):
        trace = schedule_fixpoint(program, costs)
    elif algorithm in ("single-pass", "fast"):
        trace = schedule_single_pass(program, costs)
    else:
        raise ValueError(f"unknown scheduler algorithm {algorithm!r}")
    # Profiling is a pure observer: with no active session this is one
    # None check; with one, the finished trace is read, never mutated —
    # cycles are byte-identical either way (pinned by tests/profiling).
    session = active_session()
    if session is not None:
        session.observe_trace(trace, label=program.name)
    return trace


# The packed (src_pipe, dst_pipe, event_id) form shared with the
# compiler and the arena (see the channel table in repro.isa.channels).
_pack_channel = pack_channel

_KIND_NAME = {op: cls.__name__ for cls, op in OPCODE_OF.items()}


def _raise_deadlock(stalls: List[PipeStall], injected: bool) -> None:
    """Watchdog exit: build the wait-for-graph report and raise it.

    All three schedulers funnel their stalled-pipe facts through here, so
    the guilty channel is named identically regardless of which drain
    detected the deadlock.
    """
    report = build_report(stalls, injected=injected)
    raise DeadlockError(report.describe(), report=report)


def _sync_injected(inj) -> bool:
    """Whether the active campaign has already perturbed a flag event."""
    return inj is not None and (
        inj.counters["sync_dropped"] or inj.counters["sync_duplicated"]
        or inj.counters["sync_reordered"])


def _drain(instrs: List[Instruction], costs: CostModel
           ) -> Tuple[List[int], List[int], List[Pipe], List[int]]:
    """Core single-pass drain; returns (starts, ends, pipe_of, cost_of)."""
    n = len(instrs)

    # One prepass computes everything the drain loop needs as flat lists:
    # per-pipe in-order queues, each instruction's pipe and cost, and —
    # for flags — the packed channel int (+1, so 0 means "not a
    # wait/set").  Compiled tile loops repeat a handful of distinct
    # instruction objects thousands of times (flags are interned by the
    # lowerer; repeated GEMMs share sub-program objects), so the whole
    # record is memoized per instruction *object*: one ``id()`` and one
    # dict probe per occurrence, with pipe lookup, cost dispatch and
    # channel packing paid once per distinct object.
    queues: List[List[int]] = [[] for _ in range(_N_PIPES)]
    pipe_of: List[Pipe] = [Pipe.S] * n
    cost_of = [0] * n
    wait_chan = [0] * n
    set_chan = [0] * n
    memo: Dict[int, tuple] = {}
    memo_get = memo.get
    cost = costs.cost
    for i, instr in enumerate(instrs):
        key = id(instr)
        rec = memo_get(key)
        if rec is None:
            cls = type(instr)
            if cls is WaitFlag:
                chan = 1 + _pack_channel(instr.src_pipe, instr.dst_pipe,
                                         instr.event_id)
                rec = (instr.pipe, cost(instr), chan, 0)
            elif cls is SetFlag:
                chan = 1 + _pack_channel(instr.src_pipe, instr.dst_pipe,
                                         instr.event_id)
                rec = (instr.pipe, cost(instr), 0, chan)
            else:
                rec = (instr.pipe, cost(instr), 0, 0)
            memo[key] = rec
        p, c, wc, sc = rec
        pipe_of[i] = p
        cost_of[i] = c
        wait_chan[i] = wc
        set_chan[i] = sc
        queues[p].append(i)

    # RAS hooks: both are no-ops (one None check) without an active plan.
    inj = active_injector()
    if inj is not None and inj.has_stall_faults():
        cost_of = inj.scale_costs(
            np.asarray(cost_of, np.int64),
            np.asarray([int(p) for p in pipe_of], np.int8)).tolist()
    sync_faults = inj is not None and inj.has_sync_faults()

    cursors = [0] * _N_PIPES
    pipe_time = [0] * _N_PIPES
    # Completed set_flag times waiting to be consumed, FIFO per channel.
    flags: Dict[int, Deque[int]] = {}
    # channel -> pipe currently stalled on it (one consumer per channel).
    waiters: Dict[int, int] = {}
    runnable: Deque[int] = deque(p for p in range(_N_PIPES) if queues[p])
    starts = [0] * n
    ends = [0] * n
    done = 0

    while runnable:
        pipe = runnable.popleft()
        queue = queues[pipe]
        cur = cursors[pipe]
        now = pipe_time[pipe]
        qlen = len(queue)
        while cur < qlen:
            index = queue[cur]
            dispatch_ready = index // _DISPATCH_PER_CYCLE
            start = now if now > dispatch_ready else dispatch_ready
            channel = wait_chan[index]
            if channel:
                pending = flags.get(channel)
                if not pending:
                    waiters[channel] = pipe  # stalled: producer not ready
                    break
                signalled = pending.popleft()
                if signalled > start:
                    start = signalled
            end = start + cost_of[index]
            channel = set_chan[index]
            if channel:
                action = inj.sync_action(channel - 1) if sync_faults else None
                if action == "drop":
                    pass  # the flag write is lost: consumer keeps stalling
                else:
                    pending_sets = flags.setdefault(channel, deque())
                    if action == "reorder":
                        pending_sets.appendleft(end)
                    else:
                        pending_sets.append(end)
                        if action == "dup":
                            pending_sets.append(end)
                    woken = waiters.pop(channel, None)
                    if woken is not None:
                        runnable.append(woken)
            now = end
            starts[index] = start
            ends[index] = end
            cur += 1
            done += 1
        cursors[pipe] = cur
        pipe_time[pipe] = now

    if done < n:
        # Watchdog: rebuild the wait-for graph from the stalled heads and
        # the sets still pending in the un-executed suffix of each queue.
        pending: Dict[int, int] = {}  # packed channel -> earliest set index
        for p in range(_N_PIPES):
            for i in queues[p][cursors[p]:]:
                sc = set_chan[i]
                if sc and (sc - 1) not in pending:
                    pending[sc - 1] = i
        stalls = []
        for p in range(_N_PIPES):
            if cursors[p] < len(queues[p]):
                i = queues[p][cursors[p]]
                kind = type(instrs[i]).__name__
                wc = wait_chan[i]
                if wc:
                    producer = pending.get(wc - 1)
                    stalls.append(PipeStall(
                        pipe=str(Pipe(p)), index=i, kind=kind,
                        channel=wc - 1, producer_index=producer,
                        never_set=producer is None))
                else:
                    stalls.append(PipeStall(pipe=str(Pipe(p)), index=i,
                                            kind=kind))
        _raise_deadlock(stalls, _sync_injected(inj))

    return starts, ends, pipe_of, cost_of


def _match_waits(arena) -> np.ndarray:
    """Static wait -> set pairing, computed vectorized.

    The runtime FIFO rendezvous in :func:`_drain` admits a *static*
    matching: every wait of a channel executes on the channel's dst pipe
    and every set on its src pipe, and pipes retire in program order — so
    the j-th program-order wait on a channel always pops the end time of
    the j-th program-order set, regardless of interleaving.  Returns an
    (n,) array: row index of the matched set for waits, -1 for non-waits,
    and -2 for waits whose set never arrives (they stall forever, which
    the drain reports as the same deadlock the dynamic rendezvous hits).
    """
    from ..isa.instructions import OP_SET, OP_WAIT

    packed = arena.packed_channels()
    kind = arena.kind
    set_idx = np.nonzero(kind == OP_SET)[0]
    wait_idx = np.nonzero(kind == OP_WAIT)[0]
    match = np.full(arena.n, -1, np.int64)
    if not wait_idx.size:
        return match
    if not set_idx.size:
        match[wait_idx] = -2
        return match

    def chan_rank(ch: np.ndarray) -> np.ndarray:
        """Occurrence number of each element within its channel value."""
        order = np.argsort(ch, kind="stable")
        sorted_ch = ch[order]
        new_group = np.empty(ch.size, bool)
        new_group[0] = True
        np.not_equal(sorted_ch[1:], sorted_ch[:-1], out=new_group[1:])
        group_start = np.maximum.accumulate(
            np.where(new_group, np.arange(ch.size), 0))
        ranks = np.empty(ch.size, np.int64)
        ranks[order] = np.arange(ch.size) - group_start
        return ranks

    set_ch = packed[set_idx]
    wait_ch = packed[wait_idx]
    stride = np.int64(max(set_idx.size, wait_idx.size) + 1)
    set_key = set_ch * stride + chan_rank(set_ch)
    wait_key = wait_ch * stride + chan_rank(wait_ch)
    order = np.argsort(set_key)
    pos = np.searchsorted(set_key, wait_key, sorter=order)
    pos_clipped = np.minimum(pos, set_key.size - 1)
    candidates = set_idx[order[pos_clipped]]
    found = (pos < set_key.size) & (set_key[order[pos_clipped]] == wait_key)
    match[wait_idx] = np.where(found, candidates, -2)
    return match


def _drain_arena(arena, costs: CostModel,
                 cost_col: Optional[np.ndarray] = None
                 ) -> Tuple[List[int], List[int], np.ndarray, np.ndarray]:
    """Arena-native twin of :func:`_drain`.

    The prepass reads the precomputed columns directly — per-pipe queues
    from one ``nonzero`` per pipe, costs from
    :meth:`CostModel.cost_columns`, flag pairing from :func:`_match_waits`
    — so no instruction objects and no per-row Python dispatch exist
    between the compiler and the drain loop.  The static matching also
    strips every dict/deque operation out of the loop: a wait reads its
    producer's end time straight out of ``ends`` (−1 = not yet retired),
    and a retiring instruction wakes at most one registered waiter via a
    flat array.  Each pipe's queue is pre-zipped into (row, cost, match)
    tuples so the hot loop unpacks one small-list entry instead of
    indexing three program-length columns.  Produces bit-identical
    schedules to :func:`_drain` (asserted by tests against both it and
    the fixpoint oracle).

    Returns (starts, ends, pipe column, cost column); the caller may pass
    a precomputed ``cost_col`` to reuse it for busy-cycle aggregation.
    """
    n = arena.n
    pipe_col = arena.pipe
    if cost_col is None:
        cost_col = costs.cost_columns(arena)
    match_col = _match_waits(arena)

    # RAS hooks (no-ops without an active plan): stall faults scale the
    # cost column; sync faults perturb the static wait->set matching (a
    # dropped set becomes the never-set marker its consumer stalls on).
    inj = active_injector()
    if inj is not None:
        from ..isa.instructions import OP_SET
        if inj.has_stall_faults():
            cost_col = inj.scale_costs(cost_col, pipe_col)
        if inj.has_sync_faults():
            match_col = inj.perturb_matches(
                match_col, arena.packed_channels(),
                np.nonzero(arena.kind == OP_SET)[0])

    queues: List[List[tuple]] = []
    for p in range(_N_PIPES):
        rows = np.nonzero(pipe_col == p)[0]
        queues.append(list(zip(rows.tolist(), cost_col[rows].tolist(),
                               match_col[rows].tolist())))

    cursors = [0] * _N_PIPES
    pipe_time = [0] * _N_PIPES
    # waiter_of[s]: pipe currently stalled on set s (at most one — the
    # channel's single consumer pipe), -1 when none.
    waiter_of = [-1] * n
    runnable: Deque[int] = deque(p for p in range(_N_PIPES) if queues[p])
    starts = [0] * n
    ends = [-1] * n
    done = 0

    while runnable:
        pipe = runnable.popleft()
        queue = queues[pipe]
        cur = cursors[pipe]
        now = pipe_time[pipe]
        qlen = len(queue)
        while cur < qlen:
            index, c, producer = queue[cur]
            dispatch_ready = index // _DISPATCH_PER_CYCLE
            start = now if now > dispatch_ready else dispatch_ready
            if producer != -1:
                if producer < 0:  # unmatched wait: stalls forever
                    break
                signalled = ends[producer]
                if signalled < 0:
                    waiter_of[producer] = pipe  # stalled: not retired yet
                    break
                if signalled > start:
                    start = signalled
            end = start + c
            now = end
            starts[index] = start
            ends[index] = end
            woken = waiter_of[index]
            if woken >= 0:
                waiter_of[index] = -1
                runnable.append(woken)
            cur += 1
            done += 1
        cursors[pipe] = cur
        pipe_time[pipe] = now

    if done < n:
        # Watchdog: the static matching already names each wait's
        # producer; -2 marks a wait whose set never exists (or whose set
        # was dropped by an injected sync fault).
        packed = arena.packed_channels()
        kind_col = arena.kind
        stalls = []
        for p in range(_N_PIPES):
            if cursors[p] < len(queues[p]):
                row, _, producer = queues[p][cursors[p]]
                op = int(kind_col[row])
                kind = _KIND_NAME.get(op, f"opcode {op}")
                if producer != -1:
                    stalls.append(PipeStall(
                        pipe=str(Pipe(p)), index=row, kind=kind,
                        channel=int(packed[row]),
                        producer_index=producer if producer >= 0 else None,
                        never_set=producer < 0))
                else:
                    stalls.append(PipeStall(pipe=str(Pipe(p)), index=row,
                                            kind=kind))
        _raise_deadlock(stalls, _sync_injected(inj))

    # schedule_single_pass reuses ends as the trace end column.
    return starts, ends, pipe_col, cost_col


def _columnar_trace(instrs: List[Instruction], starts: List[int],
                    ends: List[int], pipe_of: List[Pipe]) -> ExecutionTrace:
    """Sort scheduler output by (start, end, index) and build the trace.

    Emits straight into the columnar arena — no per-event Python objects
    are created (``TraceEvent`` is only ever materialized lazily from the
    trace's ``events`` view).
    """
    n = len(instrs)
    start_col = np.asarray(starts, np.int64)
    end_col = np.asarray(ends, np.int64)
    index_col = np.arange(n, dtype=np.int64)
    # lexsort's last key is primary: (start, end, index), matching the
    # legacy deterministic event order.
    order = np.lexsort((index_col, end_col, start_col))
    return ExecutionTrace.from_columns(
        instrs=[instrs[i] for i in order],
        index=index_col[order],
        pipe=np.asarray(pipe_of, np.int8)[order],
        start=start_col[order],
        end=end_col[order],
    )


def schedule_single_pass(program: Program, costs: CostModel) -> ExecutionTrace:
    """Dependency-driven single-pass scheduler (O(instructions + stalls))."""
    if isinstance(program, Program) and program._arena is not None:
        starts, ends, pipe_of, _ = _drain_arena(program._arena, costs)
        # The trace's event view still needs the instruction objects.
        return _columnar_trace(program.instructions, starts, ends, pipe_of)
    instrs = (program.instructions if isinstance(program, Program)
              else list(program))
    starts, ends, pipe_of, _ = _drain(instrs, costs)
    return _columnar_trace(instrs, starts, ends, pipe_of)


_MOVE_TYPES = (CopyInstr, Img2ColInstr, TransposeInstr, DecompressInstr)


def schedule_summary(program: Program, costs: CostModel) -> TraceSummary:
    """Schedule ``program`` and return only its :class:`TraceSummary`.

    The compile path (``GraphEngine.compile_workload``) consumes nothing
    but aggregate statistics, so this fast path skips materializing the
    per-instruction ``TraceEvent`` list and the final deterministic sort
    — the two dominant costs of :func:`schedule_single_pass` after the
    drain loop itself.  Equal to ``schedule(program, costs).summary()``
    by construction (asserted in tests/core/test_engine_equivalence.py).
    """
    if isinstance(program, Program) and program._arena is not None:
        arena = program._arena
        # The drain returns the cost column it actually used (identical to
        # cost_columns' unless stall faults were injected).
        _, ends, _, cost_col = _drain_arena(arena, costs)
        # int64 sums are exact through float64 weights (values < 2^53).
        busy = np.bincount(arena.pipe, weights=cost_col,
                           minlength=_N_PIPES).astype(np.int64)
        from ..isa.arena import MOVE_OPS
        mv = np.isin(arena.kind, MOVE_OPS)
        nb = arena.nbytes
        src_sp = arena.r_space[:, 1]
        dst_sp = arena.r_space[:, 0]
        L1, GM = int(MemSpace.L1), int(MemSpace.GM)
        l1_read = int(nb[mv & (src_sp == L1), 1].sum())
        gm_read = int(nb[mv & (src_sp == GM), 0].sum())
        l1_write = int(nb[mv & (dst_sp == L1), 0].sum())
        gm_write = int(nb[mv & (dst_sp == GM), 1].sum())
        return _observed_summary(TraceSummary(
            total_cycles=max(ends, default=0),
            busy_by_pipe=tuple(int(b) for b in busy),
            l1_read_bytes=l1_read,
            l1_write_bytes=l1_write,
            gm_read_bytes=gm_read,
            gm_write_bytes=gm_write,
        ), program)
    instrs = (program.instructions if isinstance(program, Program)
              else list(program))
    _, ends, pipe_of, cost_of = _drain(instrs, costs)

    busy = [0] * _N_PIPES
    for p, c in zip(pipe_of, cost_of):
        busy[p] += c

    l1_read = l1_write = gm_read = gm_write = 0
    L1, GM = MemSpace.L1, MemSpace.GM
    for instr in instrs:
        if isinstance(instr, _MOVE_TYPES):
            src, dst = instr.src, instr.dst
            if src.space is L1:
                l1_read += src.nbytes
            elif src.space is GM:
                gm_read += dst.nbytes
            if dst.space is L1:
                l1_write += dst.nbytes
            elif dst.space is GM:
                gm_write += src.nbytes
    return _observed_summary(TraceSummary(
        total_cycles=max(ends, default=0),
        busy_by_pipe=tuple(busy),
        l1_read_bytes=l1_read,
        l1_write_bytes=l1_write,
        gm_read_bytes=gm_read,
        gm_write_bytes=gm_write,
    ), program)


def _observed_summary(summary: TraceSummary, program) -> TraceSummary:
    """Report a fast-path summary to the active profiling session (if
    any) — both summary drains funnel through here, so profiled compile
    runs see the same aggregates the caller does."""
    session = active_session()
    if session is not None:
        session.observe_summary(
            summary, label=getattr(program, "name", ""))
    return summary


def schedule_fixpoint(program: Program, costs: CostModel) -> ExecutionTrace:
    """The original rescan-to-fixpoint scheduler (reference oracle)."""
    queues: Dict[Pipe, Deque[Tuple[int, Instruction]]] = {p: deque() for p in Pipe}
    for index, instr in enumerate(program):
        queues[instr.pipe].append((index, instr))

    pipe_time: Dict[Pipe, int] = {p: 0 for p in Pipe}
    # Completed set_flag times waiting to be consumed, FIFO per channel.
    flags: Dict[_Channel, Deque[int]] = {}
    events: List[TraceEvent] = []

    remaining = len(program)
    while remaining:
        progress = False
        for pipe in Pipe:
            queue = queues[pipe]
            while queue:
                index, instr = queue[0]
                dispatch_ready = index // _DISPATCH_PER_CYCLE
                start = max(pipe_time[pipe], dispatch_ready)
                if isinstance(instr, WaitFlag):
                    channel = (instr.src_pipe, instr.dst_pipe, instr.event_id)
                    pending = flags.get(channel)
                    if not pending:
                        break  # stalled: producer has not signalled yet
                    start = max(start, pending.popleft())
                end = start + costs.cost(instr)
                if isinstance(instr, SetFlag):
                    channel = (instr.src_pipe, instr.dst_pipe, instr.event_id)
                    flags.setdefault(channel, deque()).append(end)
                pipe_time[pipe] = end
                events.append(TraceEvent(index, instr, pipe, start, end))
                queue.popleft()
                remaining -= 1
                progress = True
        if not progress:
            # Watchdog: same wait-for-graph diagnosis as the fast drains.
            pending: Dict[int, int] = {}
            for queue in queues.values():
                for i, instr in queue:
                    if isinstance(instr, SetFlag):
                        ch = _pack_channel(instr.src_pipe, instr.dst_pipe,
                                           instr.event_id)
                        if ch not in pending or i < pending[ch]:
                            pending[ch] = i
            stalls = []
            for pipe, queue in queues.items():
                if not queue:
                    continue
                i, instr = queue[0]
                kind = type(instr).__name__
                if isinstance(instr, WaitFlag):
                    ch = _pack_channel(instr.src_pipe, instr.dst_pipe,
                                       instr.event_id)
                    producer = pending.get(ch)
                    stalls.append(PipeStall(
                        pipe=str(pipe), index=i, kind=kind, channel=ch,
                        producer_index=producer,
                        never_set=producer is None))
                else:
                    stalls.append(PipeStall(pipe=str(pipe), index=i,
                                            kind=kind))
            _raise_deadlock(stalls, _sync_injected(active_injector()))

    events.sort(key=lambda e: (e.start, e.end, e.index))
    return ExecutionTrace(events=events)
