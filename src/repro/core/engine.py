"""Event-driven timing engine for the multi-queue execution model.

Figure 3 semantics: the PSQ dispatches instructions *in program order* into
per-pipe in-order queues; pipes run concurrently; a ``wait_flag`` stalls
its pipe until the matching ``set_flag`` retires on the producer pipe.

The engine advances each pipe's head instruction whenever it is runnable,
iterating to a fixpoint.  A program whose waits can never be satisfied
raises :class:`~repro.errors.DeadlockError` — the same programs hang real
silicon, so surfacing them loudly is a feature.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from ..errors import DeadlockError
from ..isa.instructions import Instruction, SetFlag, WaitFlag
from ..isa.pipes import Pipe
from ..isa.program import Program
from .costs import CostModel
from .trace import ExecutionTrace, TraceEvent

__all__ = ["schedule"]

# The PSQ dispatches a bounded number of instructions per cycle; with
# tile-granular instructions this is essentially never the bottleneck,
# but modeling it keeps pathological fine-grained programs honest.
_DISPATCH_PER_CYCLE = 4

_Channel = Tuple[Pipe, Pipe, int]


def schedule(program: Program, costs: CostModel) -> ExecutionTrace:
    """Compute start/end cycles for every instruction in ``program``."""
    queues: Dict[Pipe, Deque[Tuple[int, Instruction]]] = {p: deque() for p in Pipe}
    for index, instr in enumerate(program):
        queues[instr.pipe].append((index, instr))

    pipe_time: Dict[Pipe, int] = {p: 0 for p in Pipe}
    # Completed set_flag times waiting to be consumed, FIFO per channel.
    flags: Dict[_Channel, Deque[int]] = {}
    events: List[TraceEvent] = []

    remaining = len(program)
    while remaining:
        progress = False
        for pipe in Pipe:
            queue = queues[pipe]
            while queue:
                index, instr = queue[0]
                dispatch_ready = index // _DISPATCH_PER_CYCLE
                start = max(pipe_time[pipe], dispatch_ready)
                if isinstance(instr, WaitFlag):
                    channel = (instr.src_pipe, instr.dst_pipe, instr.event_id)
                    pending = flags.get(channel)
                    if not pending:
                        break  # stalled: producer has not signalled yet
                    start = max(start, pending.popleft())
                end = start + costs.cost(instr)
                if isinstance(instr, SetFlag):
                    channel = (instr.src_pipe, instr.dst_pipe, instr.event_id)
                    flags.setdefault(channel, deque()).append(end)
                pipe_time[pipe] = end
                events.append(TraceEvent(index, instr, pipe, start, end))
                queue.popleft()
                remaining -= 1
                progress = True
        if not progress:
            stuck = {
                str(pipe): f"#{queue[0][0]} {type(queue[0][1]).__name__}"
                for pipe, queue in queues.items()
                if queue
            }
            raise DeadlockError(
                f"no runnable instruction; stalled pipe heads: {stuck}"
            )

    events.sort(key=lambda e: (e.start, e.end, e.index))
    return ExecutionTrace(events=events)
