"""Event-driven timing engine for the multi-queue execution model.

Figure 3 semantics: the PSQ dispatches instructions *in program order* into
per-pipe in-order queues; pipes run concurrently; a ``wait_flag`` stalls
its pipe until the matching ``set_flag`` retires on the producer pipe.

Two schedulers implement these semantics:

* :func:`schedule_single_pass` (the default) — a dependency-driven O(N)
  pass.  Each pipe keeps a cursor into its queue; a pipe drains until it
  stalls on an empty flag channel, registers itself as the channel's
  waiter, and is re-queued the moment the producing ``set_flag`` retires.
  Flag channels are FIFOs keyed by a packed int (pipes hash as ints),
  and instruction costs are looked up once per distinct instruction
  object via :meth:`CostModel.cost_table`.
* :func:`schedule_fixpoint` — the original rescan-to-fixpoint loop, kept
  as the reference oracle.  ``tests/core/test_engine_equivalence.py``
  asserts both produce bit-identical traces.

Both orderings are work-conserving over the same in-order queues and
single-producer/single-consumer FIFO channels, so start/end times are
schedule-order independent — the traces they produce are identical.

A program whose waits can never be satisfied raises
:class:`~repro.errors.DeadlockError` — the same programs hang real
silicon, so surfacing them loudly is a feature.  Set ``REPRO_SCHEDULER=
fixpoint`` to force the legacy scheduler globally.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from ..config.env import env_choice
from ..errors import DeadlockError
from ..isa.arena import _COLUMN_NAMES as _ARENA_COLUMNS
from ..isa.channels import pack_channel
from ..isa.instructions import (
    OPCODE_OF,
    CopyInstr,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    SetFlag,
    TransposeInstr,
    WaitFlag,
)
from ..isa.memref import MemSpace
from ..isa.pipes import Pipe
from ..isa.program import Program
from ..profiling.session import active_session
from ..reliability.deadlock import PipeStall, build_report
from ..reliability.injector import active_injector
from .costs import CostModel
from .trace import ExecutionTrace, TraceEvent, TraceSummary

__all__ = [
    "schedule",
    "schedule_single_pass",
    "schedule_summary",
    "schedule_fixpoint",
    "engine_stats",
    "reset_engine_stats",
]

# Observability for the drain fast paths (tests pin that the intended
# path actually engaged; the benchmark harness reports them).
_ENGINE_STATS = {"flat_drains": 0, "general_drains": 0,
                 "extrapolated_blocks": 0, "summary_memo_hits": 0}


def engine_stats() -> dict:
    """Counters for scheduler fast-path engagement in this process."""
    return dict(_ENGINE_STATS)


def reset_engine_stats() -> None:
    for k in _ENGINE_STATS:
        _ENGINE_STATS[k] = 0

# The PSQ dispatches a bounded number of instructions per cycle; with
# tile-granular instructions this is essentially never the bottleneck,
# but modeling it keeps pathological fine-grained programs honest.
_DISPATCH_PER_CYCLE = 4

_Channel = Tuple[Pipe, Pipe, int]

_N_PIPES = len(Pipe)


def schedule(program: Program, costs: CostModel,
             algorithm: Optional[str] = None) -> ExecutionTrace:
    """Compute start/end cycles for every instruction in ``program``.

    ``algorithm`` selects the scheduler: ``"single-pass"`` (default) or
    ``"fixpoint"`` (the legacy reference oracle).  The ``REPRO_SCHEDULER``
    environment variable overrides the default when no explicit argument
    is given.
    """
    if algorithm is None:
        # Env-sourced values go through the shared parser, which raises a
        # ConfigError naming the variable on invalid input.
        algorithm = env_choice("REPRO_SCHEDULER", "single-pass",
                               ("single-pass", "fast", "fixpoint", "legacy"))
    if algorithm in ("fixpoint", "legacy"):
        trace = schedule_fixpoint(program, costs)
    elif algorithm in ("single-pass", "fast"):
        trace = schedule_single_pass(program, costs)
    else:
        raise ValueError(f"unknown scheduler algorithm {algorithm!r}")
    # Profiling is a pure observer: with no active session this is one
    # None check; with one, the finished trace is read, never mutated —
    # cycles are byte-identical either way (pinned by tests/profiling).
    session = active_session()
    if session is not None:
        session.observe_trace(trace, label=program.name)
    return trace


# The packed (src_pipe, dst_pipe, event_id) form shared with the
# compiler and the arena (see the channel table in repro.isa.channels).
_pack_channel = pack_channel

_KIND_NAME = {op: cls.__name__ for cls, op in OPCODE_OF.items()}


def _raise_deadlock(stalls: List[PipeStall], injected: bool) -> None:
    """Watchdog exit: build the wait-for-graph report and raise it.

    All three schedulers funnel their stalled-pipe facts through here, so
    the guilty channel is named identically regardless of which drain
    detected the deadlock.
    """
    report = build_report(stalls, injected=injected)
    raise DeadlockError(report.describe(), report=report)


def _sync_injected(inj) -> bool:
    """Whether the active campaign has already perturbed a flag event."""
    return inj is not None and (
        inj.counters["sync_dropped"] or inj.counters["sync_duplicated"]
        or inj.counters["sync_reordered"])


def _drain(instrs: List[Instruction], costs: CostModel
           ) -> Tuple[List[int], List[int], List[Pipe], List[int]]:
    """Core single-pass drain; returns (starts, ends, pipe_of, cost_of)."""
    n = len(instrs)

    # One prepass computes everything the drain loop needs as flat lists:
    # per-pipe in-order queues, each instruction's pipe and cost, and —
    # for flags — the packed channel int (+1, so 0 means "not a
    # wait/set").  Compiled tile loops repeat a handful of distinct
    # instruction objects thousands of times (flags are interned by the
    # lowerer; repeated GEMMs share sub-program objects), so the whole
    # record is memoized per instruction *object*: one ``id()`` and one
    # dict probe per occurrence, with pipe lookup, cost dispatch and
    # channel packing paid once per distinct object.
    queues: List[List[int]] = [[] for _ in range(_N_PIPES)]
    pipe_of: List[Pipe] = [Pipe.S] * n
    cost_of = [0] * n
    wait_chan = [0] * n
    set_chan = [0] * n
    memo: Dict[int, tuple] = {}
    memo_get = memo.get
    cost = costs.cost
    for i, instr in enumerate(instrs):
        key = id(instr)
        rec = memo_get(key)
        if rec is None:
            cls = type(instr)
            if cls is WaitFlag:
                chan = 1 + _pack_channel(instr.src_pipe, instr.dst_pipe,
                                         instr.event_id)
                rec = (instr.pipe, cost(instr), chan, 0)
            elif cls is SetFlag:
                chan = 1 + _pack_channel(instr.src_pipe, instr.dst_pipe,
                                         instr.event_id)
                rec = (instr.pipe, cost(instr), 0, chan)
            else:
                rec = (instr.pipe, cost(instr), 0, 0)
            memo[key] = rec
        p, c, wc, sc = rec
        pipe_of[i] = p
        cost_of[i] = c
        wait_chan[i] = wc
        set_chan[i] = sc
        queues[p].append(i)

    # RAS hooks: both are no-ops (one None check) without an active plan.
    inj = active_injector()
    if inj is not None and inj.has_stall_faults():
        cost_of = inj.scale_costs(
            np.asarray(cost_of, np.int64),
            np.asarray([int(p) for p in pipe_of], np.int8)).tolist()
    sync_faults = inj is not None and inj.has_sync_faults()

    cursors = [0] * _N_PIPES
    pipe_time = [0] * _N_PIPES
    # Completed set_flag times waiting to be consumed, FIFO per channel.
    flags: Dict[int, Deque[int]] = {}
    # channel -> pipe currently stalled on it (one consumer per channel).
    waiters: Dict[int, int] = {}
    runnable: Deque[int] = deque(p for p in range(_N_PIPES) if queues[p])
    starts = [0] * n
    ends = [0] * n
    done = 0

    while runnable:
        pipe = runnable.popleft()
        queue = queues[pipe]
        cur = cursors[pipe]
        now = pipe_time[pipe]
        qlen = len(queue)
        while cur < qlen:
            index = queue[cur]
            dispatch_ready = index // _DISPATCH_PER_CYCLE
            start = now if now > dispatch_ready else dispatch_ready
            channel = wait_chan[index]
            if channel:
                pending = flags.get(channel)
                if not pending:
                    waiters[channel] = pipe  # stalled: producer not ready
                    break
                signalled = pending.popleft()
                if signalled > start:
                    start = signalled
            end = start + cost_of[index]
            channel = set_chan[index]
            if channel:
                action = inj.sync_action(channel - 1) if sync_faults else None
                if action == "drop":
                    pass  # the flag write is lost: consumer keeps stalling
                else:
                    pending_sets = flags.setdefault(channel, deque())
                    if action == "reorder":
                        pending_sets.appendleft(end)
                    else:
                        pending_sets.append(end)
                        if action == "dup":
                            pending_sets.append(end)
                    woken = waiters.pop(channel, None)
                    if woken is not None:
                        runnable.append(woken)
            now = end
            starts[index] = start
            ends[index] = end
            cur += 1
            done += 1
        cursors[pipe] = cur
        pipe_time[pipe] = now

    if done < n:
        # Watchdog: rebuild the wait-for graph from the stalled heads and
        # the sets still pending in the un-executed suffix of each queue.
        pending: Dict[int, int] = {}  # packed channel -> earliest set index
        for p in range(_N_PIPES):
            for i in queues[p][cursors[p]:]:
                sc = set_chan[i]
                if sc and (sc - 1) not in pending:
                    pending[sc - 1] = i
        stalls = []
        for p in range(_N_PIPES):
            if cursors[p] < len(queues[p]):
                i = queues[p][cursors[p]]
                kind = type(instrs[i]).__name__
                wc = wait_chan[i]
                if wc:
                    producer = pending.get(wc - 1)
                    stalls.append(PipeStall(
                        pipe=str(Pipe(p)), index=i, kind=kind,
                        channel=wc - 1, producer_index=producer,
                        never_set=producer is None))
                else:
                    stalls.append(PipeStall(pipe=str(Pipe(p)), index=i,
                                            kind=kind))
        _raise_deadlock(stalls, _sync_injected(inj))

    return starts, ends, pipe_of, cost_of


def _match_waits(arena) -> np.ndarray:
    """Static wait -> set pairing, computed vectorized.

    The runtime FIFO rendezvous in :func:`_drain` admits a *static*
    matching: every wait of a channel executes on the channel's dst pipe
    and every set on its src pipe, and pipes retire in program order — so
    the j-th program-order wait on a channel always pops the end time of
    the j-th program-order set, regardless of interleaving.  Returns an
    (n,) array: row index of the matched set for waits, -1 for non-waits,
    and -2 for waits whose set never arrives (they stall forever, which
    the drain reports as the same deadlock the dynamic rendezvous hits).
    """
    from ..isa.instructions import OP_SET, OP_WAIT

    packed = arena.packed_channels()
    kind = arena.kind
    set_idx = np.nonzero(kind == OP_SET)[0]
    wait_idx = np.nonzero(kind == OP_WAIT)[0]
    match = np.full(arena.n, -1, np.int64)
    if not wait_idx.size:
        return match
    if not set_idx.size:
        match[wait_idx] = -2
        return match

    def chan_rank(ch: np.ndarray) -> np.ndarray:
        """Occurrence number of each element within its channel value."""
        order = np.argsort(ch, kind="stable")
        sorted_ch = ch[order]
        new_group = np.empty(ch.size, bool)
        new_group[0] = True
        np.not_equal(sorted_ch[1:], sorted_ch[:-1], out=new_group[1:])
        group_start = np.maximum.accumulate(
            np.where(new_group, np.arange(ch.size), 0))
        ranks = np.empty(ch.size, np.int64)
        ranks[order] = np.arange(ch.size) - group_start
        return ranks

    set_ch = packed[set_idx]
    wait_ch = packed[wait_idx]
    stride = np.int64(max(set_idx.size, wait_idx.size) + 1)
    set_key = set_ch * stride + chan_rank(set_ch)
    wait_key = wait_ch * stride + chan_rank(wait_ch)
    order = np.argsort(set_key)
    pos = np.searchsorted(set_key, wait_key, sorter=order)
    pos_clipped = np.minimum(pos, set_key.size - 1)
    candidates = set_idx[order[pos_clipped]]
    found = (pos < set_key.size) & (set_key[order[pos_clipped]] == wait_key)
    match[wait_idx] = np.where(found, candidates, -2)
    return match


def _repeat_segments(arena, n: int) -> List[Tuple[int, int, int]]:
    """Usable (start, block, reps) segments: in bounds, non-overlapping,
    ascending, and big enough that steady-state detection can pay off
    (at least four repeats — two to warm up, two to verify the shift)."""
    out: List[Tuple[int, int, int]] = []
    last_end = 0
    for start, block, reps in sorted(getattr(arena, "repeats", ())):
        if reps < 4 or block < 1:
            continue
        end = start + block * reps
        if start < last_end or end > n:
            continue
        out.append((start, block, reps))
        last_end = end
    return out


def _flat_drain_arena(arena, cost_col: np.ndarray, match_col: np.ndarray
                      ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Program-order drain: valid whenever every wait matches backward.

    In every program the default lowerers emit, the j-th wait on a
    channel always pairs with a set at a *lower* row index (producers
    signal before consumers reach the rendezvous).  Then each row's end
    depends only on strictly earlier rows — its pipe predecessor and its
    matched set — so program order is a topological order of the
    dependence DAG and one flat walk computes the same unique fixpoint
    the work-conserving queue drain converges to (both evaluate the
    identical per-row recurrence ``end = max(pipe_prev, dispatch,
    matched_end) + cost``; tests pin byte-identity against the queue
    drain and the fixpoint oracle).  Returns None — caller falls back to
    the general drain — when a wait matches forward or never (the
    general drain owns stall scheduling and deadlock reporting).

    Concat-repeated regions (``arena.repeats``) additionally use max-plus
    shift invariance: once the per-block match pattern repeats exactly,
    two consecutive blocks shift end times by one uniform delta, and the
    PSQ dispatch bound is strictly dominated with delta >= ceil(block /
    dispatch-rate), every later block is the previous one shifted by
    that delta — computed vectorized instead of re-walked row by row.
    """
    n = arena.n
    if n == 0:
        return np.zeros(0, np.int64), np.zeros(0, np.int64)
    if match_col.size:
        if np.any(match_col == -2):
            return None  # unmatched wait: general drain reports deadlock
        if np.any(match_col >= np.arange(n, dtype=np.int64)):
            return None  # forward match: program order not topological
    disp = _DISPATCH_PER_CYCLE
    pipe_l = arena.pipe.tolist()
    cost_l = cost_col.tolist()
    match_l = match_col.tolist()
    ends = [0] * n
    pipe_time = [0] * _N_PIPES

    def run(lo: int, hi: int) -> None:
        for i in range(lo, hi):
            p = pipe_l[i]
            t = pipe_time[p]
            d = i // disp
            if t < d:
                t = d
            m = match_l[i]
            if m >= 0:
                s = ends[m]
                if s > t:
                    t = s
            t += cost_l[i]
            pipe_time[p] = t
            ends[i] = t

    pos = 0
    for rstart, block, reps in _repeat_segments(arena, n):
        run(pos, rstart)
        _run_repeat_region(rstart, block, reps, run, ends, pipe_l, cost_l,
                           cost_col, match_col, pipe_time, disp)
        pos = rstart + block * reps
    run(pos, n)
    ends_col = np.asarray(ends, np.int64)
    return ends_col - cost_col, ends_col


def _run_repeat_region(rstart: int, B: int, R: int, run, ends, pipe_l,
                       cost_l, cost_col, match_col, pipe_time,
                       disp: int) -> None:
    """Drain rows [rstart, rstart + B*R) — R copies of a B-row block —
    extrapolating the steady state once it is *proven*, else walking.

    Preconditions verified vectorized before any shortcut:
    (a) match shift invariance — block j's waits match exactly block 0's
        pattern shifted by j*B (so every block sees the same dependence
        shape), and
    (b) match depth <= 2B — matched sets lie within the previous two
        blocks (so two observed uniform shifts pin every input of the
        next block), and
    (c) per-row costs identical across blocks.
    Then blocks are walked until two *consecutive* uniform end-time
    shifts by the same delta are observed with delta >= ceil(B/disp) and
    a strict dispatch margin on every row of the last block.  From there
    induction gives ends(block j+k) = ends(block j) + k*delta: pipe
    cursors and matched ends all shift by delta, and the dispatch bound
    grows by at most ceil(B/disp) <= delta per block while start times
    grow by exactly delta, so it can never catch up and bind.
    """
    seg_end = rstart + B * R
    mm = match_col[rstart:seg_end].reshape(R, B)
    base = mm[0]
    expect = np.where(
        base >= 0,
        base[None, :] + (np.arange(R, dtype=np.int64) * B)[:, None],
        base[None, :])
    cc = cost_col[rstart:seg_end].reshape(R, B)
    offs = np.arange(B, dtype=np.int64)
    if (not np.array_equal(mm, expect)
            or not np.all(cc == cc[0])
            or not np.all((base < 0) | (base >= rstart + offs - 2 * B))):
        run(rstart, seg_end)
        return

    min_delta = -(-B // disp)
    delta_prev: Optional[int] = None
    prev: Optional[list] = None
    j = 0
    while j < R:
        s = rstart + j * B
        run(s, s + B)
        cur = ends[s:s + B]
        if prev is not None:
            d = cur[0] - prev[0]
            uniform = all(c - p == d for c, p in zip(cur, prev))
            if (uniform and d == delta_prev and d >= min_delta
                    and j + 1 < R
                    and all(ends[s + r] - cost_l[s + r] > (s + r) // disp
                            for r in range(B))):
                rem = R - 1 - j
                blk = np.asarray(cur, np.int64)
                shifts = np.arange(1, rem + 1, dtype=np.int64) * d
                ends[s + B:seg_end] = \
                    (blk[None, :] + shifts[:, None]).ravel().tolist()
                total = rem * d
                for p in set(pipe_l[s:s + B]):
                    pipe_time[p] += total
                _ENGINE_STATS["extrapolated_blocks"] += rem
                return
            delta_prev = d if uniform else None
        prev = cur
        j += 1


def _drain_arena(arena, costs: CostModel,
                 cost_col: Optional[np.ndarray] = None
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Arena-native twin of :func:`_drain`.

    The prepass reads the precomputed columns directly — per-pipe queues
    from one ``nonzero`` per pipe, costs from
    :meth:`CostModel.cost_columns`, flag pairing from :func:`_match_waits`
    — so no instruction objects and no per-row Python dispatch exist
    between the compiler and the drain loop.  The static matching also
    strips every dict/deque operation out of the loop: a wait reads its
    producer's end time straight out of ``ends`` (−1 = not yet retired),
    and a retiring instruction wakes at most one registered waiter via a
    flat array.  Each pipe's queue is pre-zipped into (row, cost, match)
    tuples so the hot loop unpacks one small-list entry instead of
    indexing three program-length columns.  Produces bit-identical
    schedules to :func:`_drain` (asserted by tests against both it and
    the fixpoint oracle).

    Returns (starts, ends, pipe column, cost column); the caller may pass
    a precomputed ``cost_col`` to reuse it for busy-cycle aggregation.
    """
    n = arena.n
    pipe_col = arena.pipe
    if cost_col is None:
        cost_col = costs.cost_columns(arena)
    match_col = _match_waits(arena)

    # RAS hooks (no-ops without an active plan): stall faults scale the
    # cost column; sync faults perturb the static wait->set matching (a
    # dropped set becomes the never-set marker its consumer stalls on).
    inj = active_injector()
    if inj is not None:
        from ..isa.instructions import OP_SET
        if inj.has_stall_faults():
            cost_col = inj.scale_costs(cost_col, pipe_col)
        if inj.has_sync_faults():
            match_col = inj.perturb_matches(
                match_col, arena.packed_channels(),
                np.nonzero(arena.kind == OP_SET)[0])

    # Flat program-order fast path: applicable exactly when every wait
    # matches backward (always true for lowered programs; injected sync
    # faults can break it, in which case the perturbed match column
    # fails the precondition and the general drain below takes over).
    flat = _flat_drain_arena(arena, cost_col, match_col)
    if flat is not None:
        _ENGINE_STATS["flat_drains"] += 1
        starts, ends = flat
        return starts, ends, pipe_col, cost_col
    _ENGINE_STATS["general_drains"] += 1

    queues: List[List[tuple]] = []
    for p in range(_N_PIPES):
        rows = np.nonzero(pipe_col == p)[0]
        queues.append(list(zip(rows.tolist(), cost_col[rows].tolist(),
                               match_col[rows].tolist())))

    cursors = [0] * _N_PIPES
    pipe_time = [0] * _N_PIPES
    # waiter_of[s]: pipe currently stalled on set s (at most one — the
    # channel's single consumer pipe), -1 when none.
    waiter_of = [-1] * n
    runnable: Deque[int] = deque(p for p in range(_N_PIPES) if queues[p])
    starts = [0] * n
    ends = [-1] * n
    done = 0

    while runnable:
        pipe = runnable.popleft()
        queue = queues[pipe]
        cur = cursors[pipe]
        now = pipe_time[pipe]
        qlen = len(queue)
        while cur < qlen:
            index, c, producer = queue[cur]
            dispatch_ready = index // _DISPATCH_PER_CYCLE
            start = now if now > dispatch_ready else dispatch_ready
            if producer != -1:
                if producer < 0:  # unmatched wait: stalls forever
                    break
                signalled = ends[producer]
                if signalled < 0:
                    waiter_of[producer] = pipe  # stalled: not retired yet
                    break
                if signalled > start:
                    start = signalled
            end = start + c
            now = end
            starts[index] = start
            ends[index] = end
            woken = waiter_of[index]
            if woken >= 0:
                waiter_of[index] = -1
                runnable.append(woken)
            cur += 1
            done += 1
        cursors[pipe] = cur
        pipe_time[pipe] = now

    if done < n:
        # Watchdog: the static matching already names each wait's
        # producer; -2 marks a wait whose set never exists (or whose set
        # was dropped by an injected sync fault).
        packed = arena.packed_channels()
        kind_col = arena.kind
        stalls = []
        for p in range(_N_PIPES):
            if cursors[p] < len(queues[p]):
                row, _, producer = queues[p][cursors[p]]
                op = int(kind_col[row])
                kind = _KIND_NAME.get(op, f"opcode {op}")
                if producer != -1:
                    stalls.append(PipeStall(
                        pipe=str(Pipe(p)), index=row, kind=kind,
                        channel=int(packed[row]),
                        producer_index=producer if producer >= 0 else None,
                        never_set=producer < 0))
                else:
                    stalls.append(PipeStall(pipe=str(Pipe(p)), index=row,
                                            kind=kind))
        _raise_deadlock(stalls, _sync_injected(inj))

    # schedule_single_pass reuses ends as the trace end column.
    return (np.asarray(starts, np.int64), np.asarray(ends, np.int64),
            pipe_col, cost_col)


def _columnar_trace(instrs: List[Instruction], starts: List[int],
                    ends: List[int], pipe_of: List[Pipe]) -> ExecutionTrace:
    """Sort scheduler output by (start, end, index) and build the trace.

    Emits straight into the columnar arena — no per-event Python objects
    are created (``TraceEvent`` is only ever materialized lazily from the
    trace's ``events`` view).
    """
    n = len(instrs)
    start_col = np.asarray(starts, np.int64)
    end_col = np.asarray(ends, np.int64)
    index_col = np.arange(n, dtype=np.int64)
    # lexsort's last key is primary: (start, end, index), matching the
    # legacy deterministic event order.
    order = np.lexsort((index_col, end_col, start_col))
    return ExecutionTrace.from_columns(
        instrs=[instrs[i] for i in order],
        index=index_col[order],
        pipe=np.asarray(pipe_of, np.int8)[order],
        start=start_col[order],
        end=end_col[order],
    )


def schedule_single_pass(program: Program, costs: CostModel) -> ExecutionTrace:
    """Dependency-driven single-pass scheduler (O(instructions + stalls))."""
    if isinstance(program, Program) and program._arena is not None:
        starts, ends, pipe_of, _ = _drain_arena(program._arena, costs)
        # The trace's event view still needs the instruction objects.
        return _columnar_trace(program.instructions, starts, ends, pipe_of)
    instrs = (program.instructions if isinstance(program, Program)
              else list(program))
    starts, ends, pipe_of, _ = _drain(instrs, costs)
    return _columnar_trace(instrs, starts, ends, pipe_of)


_MOVE_TYPES = (CopyInstr, Img2ColInstr, TransposeInstr, DecompressInstr)

# Summary results memoized by column *identity*: the compiler's memo
# hands structurally identical layers retagged views over the very same
# column arrays (only ``tag_id`` differs, and nothing in a summary
# depends on tags), so BERT's 12 encoder blocks drain once.  The key is
# ``(id(kind column), id(costs))``; a hit additionally verifies that
# every non-tag column is the identical object, so id reuse after GC
# can never alias (values hold strong refs that pin the key objects
# anyway).  Bounded FIFO keeps long sweeps from accumulating arenas.
# Any active fault campaign bypasses the memo — injected perturbations
# are per-call.
_SUMMARY_MEMO: "Dict[Tuple[int, int], tuple]" = {}
_SUMMARY_MEMO_CAP = 512
_SUMMARY_COLS = tuple(c for c in _ARENA_COLUMNS if c != "tag_id")


def schedule_summary(program: Program, costs: CostModel) -> TraceSummary:
    """Schedule ``program`` and return only its :class:`TraceSummary`.

    The compile path (``GraphEngine.compile_workload``) consumes nothing
    but aggregate statistics, so this fast path skips materializing the
    per-instruction ``TraceEvent`` list and the final deterministic sort
    — the two dominant costs of :func:`schedule_single_pass` after the
    drain loop itself.  Equal to ``schedule(program, costs).summary()``
    by construction (asserted in tests/core/test_engine_equivalence.py).
    """
    if isinstance(program, Program) and program._arena is not None:
        arena = program._arena
        memo_ok = active_injector() is None
        key = (id(arena.kind), id(costs))
        if memo_ok:
            hit = _SUMMARY_MEMO.get(key)
            if (hit is not None and hit[1] is costs
                    and all(getattr(hit[0], c) is getattr(arena, c)
                            for c in _SUMMARY_COLS)):
                _ENGINE_STATS["summary_memo_hits"] += 1
                return _observed_summary(hit[2], program)
        # The drain returns the cost column it actually used (identical to
        # cost_columns' unless stall faults were injected).
        _, ends, _, cost_col = _drain_arena(arena, costs)
        # int64 sums are exact through float64 weights (values < 2^53).
        busy = np.bincount(arena.pipe, weights=cost_col,
                           minlength=_N_PIPES).astype(np.int64)
        from ..isa.arena import MOVE_OPS
        mv = np.isin(arena.kind, MOVE_OPS)
        nb = arena.nbytes
        src_sp = arena.r_space[:, 1]
        dst_sp = arena.r_space[:, 0]
        L1, GM = int(MemSpace.L1), int(MemSpace.GM)
        l1_read = int(nb[mv & (src_sp == L1), 1].sum())
        gm_read = int(nb[mv & (src_sp == GM), 0].sum())
        l1_write = int(nb[mv & (dst_sp == L1), 0].sum())
        gm_write = int(nb[mv & (dst_sp == GM), 1].sum())
        summary = TraceSummary(
            total_cycles=int(ends.max()) if len(ends) else 0,
            busy_by_pipe=tuple(int(b) for b in busy),
            l1_read_bytes=l1_read,
            l1_write_bytes=l1_write,
            gm_read_bytes=gm_read,
            gm_write_bytes=gm_write,
        )
        if memo_ok:
            _SUMMARY_MEMO[key] = (arena, costs, summary)
            while len(_SUMMARY_MEMO) > _SUMMARY_MEMO_CAP:
                _SUMMARY_MEMO.pop(next(iter(_SUMMARY_MEMO)))
        return _observed_summary(summary, program)
    instrs = (program.instructions if isinstance(program, Program)
              else list(program))
    _, ends, pipe_of, cost_of = _drain(instrs, costs)

    busy = [0] * _N_PIPES
    for p, c in zip(pipe_of, cost_of):
        busy[p] += c

    l1_read = l1_write = gm_read = gm_write = 0
    L1, GM = MemSpace.L1, MemSpace.GM
    for instr in instrs:
        if isinstance(instr, _MOVE_TYPES):
            src, dst = instr.src, instr.dst
            if src.space is L1:
                l1_read += src.nbytes
            elif src.space is GM:
                gm_read += dst.nbytes
            if dst.space is L1:
                l1_write += dst.nbytes
            elif dst.space is GM:
                gm_write += src.nbytes
    return _observed_summary(TraceSummary(
        total_cycles=max(ends, default=0),
        busy_by_pipe=tuple(busy),
        l1_read_bytes=l1_read,
        l1_write_bytes=l1_write,
        gm_read_bytes=gm_read,
        gm_write_bytes=gm_write,
    ), program)


def _observed_summary(summary: TraceSummary, program) -> TraceSummary:
    """Report a fast-path summary to the active profiling session (if
    any) — both summary drains funnel through here, so profiled compile
    runs see the same aggregates the caller does."""
    session = active_session()
    if session is not None:
        session.observe_summary(
            summary, label=getattr(program, "name", ""))
    return summary


def schedule_fixpoint(program: Program, costs: CostModel) -> ExecutionTrace:
    """The original rescan-to-fixpoint scheduler (reference oracle)."""
    queues: Dict[Pipe, Deque[Tuple[int, Instruction]]] = {p: deque() for p in Pipe}
    for index, instr in enumerate(program):
        queues[instr.pipe].append((index, instr))

    pipe_time: Dict[Pipe, int] = {p: 0 for p in Pipe}
    # Completed set_flag times waiting to be consumed, FIFO per channel.
    flags: Dict[_Channel, Deque[int]] = {}
    events: List[TraceEvent] = []

    remaining = len(program)
    while remaining:
        progress = False
        for pipe in Pipe:
            queue = queues[pipe]
            while queue:
                index, instr = queue[0]
                dispatch_ready = index // _DISPATCH_PER_CYCLE
                start = max(pipe_time[pipe], dispatch_ready)
                if isinstance(instr, WaitFlag):
                    channel = (instr.src_pipe, instr.dst_pipe, instr.event_id)
                    pending = flags.get(channel)
                    if not pending:
                        break  # stalled: producer has not signalled yet
                    start = max(start, pending.popleft())
                end = start + costs.cost(instr)
                if isinstance(instr, SetFlag):
                    channel = (instr.src_pipe, instr.dst_pipe, instr.event_id)
                    flags.setdefault(channel, deque()).append(end)
                pipe_time[pipe] = end
                events.append(TraceEvent(index, instr, pipe, start, end))
                queue.popleft()
                remaining -= 1
                progress = True
        if not progress:
            # Watchdog: same wait-for-graph diagnosis as the fast drains.
            pending: Dict[int, int] = {}
            for queue in queues.values():
                for i, instr in queue:
                    if isinstance(instr, SetFlag):
                        ch = _pack_channel(instr.src_pipe, instr.dst_pipe,
                                           instr.event_id)
                        if ch not in pending or i < pending[ch]:
                            pending[ch] = i
            stalls = []
            for pipe, queue in queues.items():
                if not queue:
                    continue
                i, instr = queue[0]
                kind = type(instr).__name__
                if isinstance(instr, WaitFlag):
                    ch = _pack_channel(instr.src_pipe, instr.dst_pipe,
                                       instr.event_id)
                    producer = pending.get(ch)
                    stalls.append(PipeStall(
                        pipe=str(pipe), index=i, kind=kind, channel=ch,
                        producer_index=producer,
                        never_set=producer is None))
                else:
                    stalls.append(PipeStall(pipe=str(pipe), index=i,
                                            kind=kind))
            _raise_deadlock(stalls, _sync_injected(active_injector()))

    events.sort(key=lambda e: (e.start, e.end, e.index))
    return ExecutionTrace(events=events)
