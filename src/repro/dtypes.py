"""Data types supported by the Ascend datapath.

The paper's cube unit consumes fp16 sources and accumulates in fp32
(Section 2.1, citing mixed-precision training), with int8 source / int32
accumulate as a tailored mode (Ascend-Tiny) and int4 for automotive
inference (Section 3.3).  numpy has no int4 storage type, so int4 values
are *emulated*: stored in int8 arrays but range-checked to [-8, 7].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ConfigError

__all__ = [
    "DType",
    "FP32",
    "FP16",
    "INT32",
    "INT8",
    "INT4",
    "dtype_by_name",
    "quantize",
    "dequantize",
    "cast",
    "accumulator_for",
]


@dataclass(frozen=True)
class DType:
    """A datapath element type.

    Attributes:
        name: canonical short name, e.g. ``"fp16"``.
        bits: storage width in bits (int4 is stored widened but *counts*
            as 4 bits for all bandwidth and capacity accounting).
        np_dtype: numpy dtype used for functional emulation.
        is_float: floating-point vs integer datapath.
    """

    name: str
    bits: int
    np_dtype: np.dtype
    is_float: bool

    @property
    def bytes(self) -> float:
        """Storage size in bytes; fractional for sub-byte types (int4)."""
        return self.bits / 8

    @property
    def min_value(self) -> float:
        if self.is_float:
            return float(np.finfo(self.np_dtype).min)
        if self.name == "int4":
            return -8.0
        return float(np.iinfo(self.np_dtype).min)

    @property
    def max_value(self) -> float:
        if self.is_float:
            return float(np.finfo(self.np_dtype).max)
        if self.name == "int4":
            return 7.0
        return float(np.iinfo(self.np_dtype).max)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


FP32 = DType("fp32", 32, np.dtype(np.float32), True)
FP16 = DType("fp16", 16, np.dtype(np.float16), True)
INT32 = DType("int32", 32, np.dtype(np.int32), False)
INT8 = DType("int8", 8, np.dtype(np.int8), False)
INT4 = DType("int4", 4, np.dtype(np.int8), False)

_ALL = {d.name: d for d in (FP32, FP16, INT32, INT8, INT4)}


def dtype_by_name(name: str) -> DType:
    """Look up a :class:`DType` by its canonical name."""
    try:
        return _ALL[name]
    except KeyError:
        raise ConfigError(f"unknown dtype {name!r}; known: {sorted(_ALL)}") from None


def accumulator_for(source: DType) -> DType:
    """Accumulator type the cube unit uses for a given source type.

    fp16 accumulates into fp32 and int8/int4 into int32, per Section 2.1.
    """
    if source.is_float:
        return FP32
    return INT32


def cast(array: np.ndarray, dtype: DType) -> np.ndarray:
    """Cast an array to the numpy representation of ``dtype``.

    Integer targets saturate (as hardware converters do) rather than wrap.
    """
    if dtype.is_float:
        return array.astype(dtype.np_dtype)
    clipped = np.clip(np.rint(array.astype(np.float64)), dtype.min_value, dtype.max_value)
    return clipped.astype(dtype.np_dtype)


def quantize(array: np.ndarray, dtype: DType, scale: float, zero_point: int = 0) -> np.ndarray:
    """Affine-quantize a float array: ``q = round(x / scale) + zero_point``.

    This is the vector unit's quantization op (Section 2.2 lists precision
    conversion among int32/fp16/int8 as a vector responsibility).
    """
    if dtype.is_float:
        raise ConfigError(f"quantize target must be an integer dtype, got {dtype}")
    if scale <= 0:
        raise ConfigError(f"quantization scale must be positive, got {scale}")
    q = np.rint(array.astype(np.float64) / scale) + zero_point
    return np.clip(q, dtype.min_value, dtype.max_value).astype(dtype.np_dtype)


def dequantize(array: np.ndarray, scale: float, zero_point: int = 0,
               dtype: DType = FP16) -> np.ndarray:
    """Invert :func:`quantize`: ``x = (q - zero_point) * scale``."""
    if not dtype.is_float:
        raise ConfigError(f"dequantize target must be a float dtype, got {dtype}")
    return ((array.astype(np.float64) - zero_point) * scale).astype(dtype.np_dtype)
