"""Detection and tracking workloads (Table 1: "MaskRCNN Series, Siamese
Tracking" on the Ascend core).

* :func:`build_detector` — a Faster/Mask-RCNN-style pipeline: ResNet-50
  backbone, FPN neck (lateral 1x1 convs + top-down upsampling), an RPN
  head whose proposal/NMS stages run as vector CV operators (Table 2
  lists RPN among the vector unit's CV operators), ROI-Align, and a
  two-FC detection head.
* :func:`build_siamese_tracker` — a SiamFC/RPN-style tracker: shared
  backbone over template and search crops, then depthwise
  cross-correlation (a vector CV op) and a light prediction head.
"""

from __future__ import annotations

from typing import List, Tuple

from ..dtypes import DType, FP16
from ..graph import Graph, GraphBuilder, TensorSpec
from ..graph.ops import CvOp, Reshape, Upsample2D
from .resnet import _bottleneck, _stem

__all__ = ["build_detector", "build_siamese_tracker"]

_STAGES = ((3, 64), (4, 128), (6, 256), (3, 512))


def _backbone_stages(b: GraphBuilder, x: TensorSpec) -> List[TensorSpec]:
    """ResNet-50 backbone returning the C2..C5 feature maps."""
    x = _stem(b, x)
    features = []
    for stage, (count, width) in enumerate(_STAGES, start=2):
        for i in range(count):
            stride = 2 if (i == 0 and stage > 2) else 1
            x = _bottleneck(b, x, width, width * 4, stride,
                            label=f"conv{stage}_{i + 1}")
        features.append(x)
    return features


def _fpn(b: GraphBuilder, features: List[TensorSpec],
         channels: int = 256) -> List[TensorSpec]:
    """Feature pyramid: lateral 1x1 convs, top-down adds, 3x3 smoothing."""
    laterals = []
    for i, feat in enumerate(features):
        b.group(f"fpn_lat{i + 2}")
        laterals.append(b.conv2d(feat, channels, kernel=1,
                                 name=f"fpn_lateral{i + 2}"))
    outs = [laterals[-1]]
    for i in range(len(laterals) - 2, -1, -1):
        b.group(f"fpn_td{i + 2}")
        upper = outs[0]
        up_spec = TensorSpec(
            f"fpn_up{i + 2}",
            (upper.shape[0], upper.shape[1] * 2, upper.shape[2] * 2,
             upper.shape[3]),
            upper.dtype,
        )
        b.graph.add(Upsample2D(name=f"fpn_upsample{i + 2}", inputs=(upper,),
                               output=up_spec, group=b._group, factor=2))
        merged = b.add(laterals[i], up_spec)
        outs.insert(0, merged)
    smoothed = []
    for i, feat in enumerate(outs):
        b.group(f"fpn_out{i + 2}")
        smoothed.append(b.conv2d(feat, channels, kernel=3, padding=1,
                                 name=f"fpn_smooth{i + 2}"))
    return smoothed


def _rpn(b: GraphBuilder, pyramid: List[TensorSpec], anchors: int = 3
         ) -> List[TensorSpec]:
    """RPN head per pyramid level + proposal/NMS vector CV ops."""
    proposals = []
    for i, feat in enumerate(pyramid):
        b.group(f"rpn_p{i + 2}")
        hidden = b.conv2d(feat, feat.shape[-1], kernel=3, padding=1,
                          name=f"rpn_conv{i + 2}")
        hidden = b.relu(hidden)
        scores = b.conv2d(hidden, anchors, kernel=1,
                          name=f"rpn_cls{i + 2}")
        b.conv2d(hidden, 4 * anchors, kernel=1, name=f"rpn_box{i + 2}")
        prop = TensorSpec(f"rpn_prop{i + 2}", scores.shape, scores.dtype)
        b.graph.add(CvOp(name=f"rpn_proposal{i + 2}", inputs=(scores,),
                         output=prop, group=b._group, kind="rpn_proposal"))
        proposals.append(prop)
    return proposals


def build_detector(batch: int = 1, image: int = 512, rois: int = 256,
                   classes: int = 81, dtype: DType = FP16) -> Graph:
    """A Faster-RCNN-style detector graph (MaskRCNN-series workload)."""
    b = GraphBuilder(f"detector_b{batch}", dtype)
    x = b.input("image", (batch, image, image, 3))
    features = _backbone_stages(b, x)
    pyramid = _fpn(b, features)
    proposals = _rpn(b, pyramid)

    # NMS over all levels' proposals (vector CV op).
    b.group("nms")
    total = sum(p.elems for p in proposals)
    flat_props = []
    for p in proposals:
        spec = TensorSpec(f"{p.name}_flat", (p.elems,), p.dtype)
        b.graph.add(Reshape(name=f"{p.name}_reshape", inputs=(p,),
                            output=spec, group="nms"))
        flat_props.append(spec)
    keep = TensorSpec("nms_keep", (batch * rois, 5), dtype)
    b.graph.add(CvOp(name="nms", inputs=(flat_props[0],), output=keep,
                     group="nms", kind="nms"))

    # ROI-Align + two-FC detection head.
    b.group("roi_head")
    roi_feat = TensorSpec("roi_feats", (batch * rois, 7, 7, 256), dtype)
    b.graph.add(CvOp(name="roi_align", inputs=(keep,), output=roi_feat,
                     group="roi_head", kind="roi_align"))
    flat = TensorSpec("roi_flat", (batch * rois, 7 * 7 * 256), dtype)
    b.graph.add(Reshape(name="roi_flatten", inputs=(roi_feat,), output=flat,
                        group="roi_head"))
    h = b.dense(flat, 1024, name="head_fc1")
    h = b.relu(h)
    h = b.dense(h, 1024, name="head_fc2")
    h = b.relu(h)
    b.group("predict")
    cls = b.dense(h, classes, name="cls_score")
    b.softmax(cls)
    b.dense(h, 4 * classes, name="bbox_pred")
    return b.build()


def build_siamese_tracker(batch: int = 1, template: int = 127,
                          search: int = 255, feat_channels: int = 256,
                          dtype: DType = FP16) -> Graph:
    """A SiamRPN-style tracker: shared conv backbone + cross-correlation."""
    b = GraphBuilder(f"siamese_b{batch}", dtype)
    z = b.input("template", (batch, template, template, 3))
    x = b.input("search", (batch, search, search, 3))

    def branch(inp: TensorSpec, prefix: str) -> TensorSpec:
        b.group(f"{prefix}_backbone")
        y = b.conv2d(inp, 64, kernel=7, stride=2, padding=3,
                     name=f"{prefix}_conv1")
        y = b.batch_norm(y)
        y = b.relu(y)
        y = b.pool2d(y, kernel=3, stride=2, padding=1)
        y = b.conv2d(y, 128, kernel=3, stride=2, padding=1,
                     name=f"{prefix}_conv2")
        y = b.relu(y)
        y = b.conv2d(y, feat_channels, kernel=3, stride=2, padding=1,
                     name=f"{prefix}_conv3")
        return b.relu(y)

    z_feat = branch(z, "template")
    x_feat = branch(x, "search")

    # Depthwise cross-correlation on the vector unit (CV op): template
    # features slide over search features per channel.
    b.group("xcorr")
    zb, zh, zw, zc = z_feat.shape
    xb, xh, xw, xc = x_feat.shape
    corr = TensorSpec("xcorr_map",
                      (batch, xh - zh + 1, xw - zw + 1, feat_channels),
                      dtype)
    b.graph.add(CvOp(name="xcorr", inputs=(x_feat, z_feat), output=corr,
                     group="xcorr", kind="xcorr"))

    b.group("head")
    score = b.conv2d(corr, 10, kernel=1, name="rpn_cls")  # 5 anchors x 2
    b.softmax(score)
    b.conv2d(corr, 20, kernel=1, name="rpn_reg")  # 5 anchors x 4
    return b.build()
