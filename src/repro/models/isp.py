"""An ISP denoising network — Table 1's "Novel Neural Network for Image
Signal Processor" workload on Ascend-Lite.

Phone ISPs run small residual U-Nets on raw sensor tiles (denoise /
demosaic / HDR fusion).  Huawei's network is unpublished; the stand-in
is a 3-level residual U-Net over a 128x128 tile, built entirely from IR
ops (down: strided conv; up: :class:`Upsample2D` + conv; skip: add).
"""

from __future__ import annotations

from typing import List

from ..dtypes import DType, FP16
from ..graph import Graph, GraphBuilder, TensorSpec
from ..graph.ops import Upsample2D

__all__ = ["build_isp_unet"]


def build_isp_unet(batch: int = 1, tile: int = 128, base_channels: int = 16,
                   dtype: DType = FP16) -> Graph:
    """A 3-level residual U-Net denoiser over raw 4-channel tiles."""
    b = GraphBuilder(f"isp_unet_b{batch}", dtype)
    x = b.input("raw_tile", (batch, tile, tile, 4))

    def conv_block(inp: TensorSpec, ch: int, label: str,
                   stride: int = 1) -> TensorSpec:
        b.group(label)
        y = b.conv2d(inp, ch, kernel=3, stride=stride, padding=1, bias=False)
        y = b.batch_norm(y)
        return b.relu(y)

    # Encoder.
    skips: List[TensorSpec] = []
    y = conv_block(x, base_channels, "enc0")
    for level in range(1, 4):
        skips.append(y)
        y = conv_block(y, base_channels * 2 ** level, f"enc{level}",
                       stride=2)

    # Decoder with skip additions.
    for level in range(3, 0, -1):
        b.group(f"dec{level}")
        ch = base_channels * 2 ** (level - 1)
        up_spec = TensorSpec(
            f"up{level}",
            (batch, y.shape[1] * 2, y.shape[2] * 2, y.shape[3]), dtype)
        b.graph.add(Upsample2D(name=f"upsample{level}", inputs=(y,),
                               output=up_spec, group=b._group, factor=2))
        y = b.conv2d(up_spec, ch, kernel=3, padding=1, bias=False,
                     name=f"dec_conv{level}")
        y = b.batch_norm(y)
        y = b.relu(y)
        y = b.add(y, skips[level - 1], name=f"skip{level}")

    # Residual output: predict the noise, subtract via a final add of the
    # (negated) estimate — modeled as conv + add with the input's RGGB.
    b.group("out")
    noise = b.conv2d(y, 4, kernel=3, padding=1, name="noise_pred")
    b.add(noise, x, name="denoised")
    return b.build()
