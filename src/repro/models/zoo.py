"""Registry mapping model names to builders (Table 1's workload matrix)."""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import GraphError
from ..graph import Graph
from .bert import BERT_BASE, BERT_LARGE, build_bert
from .detection import build_detector, build_siamese_tracker
from .gesture import build_gesture_net
from .gpt import GPT_MEDIUM, GPT_SMALL, GPT_TINY, build_gpt
from .isp import build_isp_unet
from .mobilenet import build_mobilenet_v2
from .pointnet import build_pointnet
from .resnet import build_resnet18, build_resnet50
from .vgg import build_vgg16
from .wide_deep import build_wide_deep

__all__ = ["MODEL_BUILDERS", "build_model"]

MODEL_BUILDERS: Dict[str, Callable[..., Graph]] = {
    "resnet50": build_resnet50,
    "resnet18": build_resnet18,
    "mobilenet_v2": build_mobilenet_v2,
    "bert-base": lambda **kw: build_bert(BERT_BASE, **kw),
    "bert-large": lambda **kw: build_bert(BERT_LARGE, **kw),
    "gpt-tiny": lambda **kw: build_gpt(GPT_TINY, **kw),
    "gpt-small": lambda **kw: build_gpt(GPT_SMALL, **kw),
    "gpt-medium": lambda **kw: build_gpt(GPT_MEDIUM, **kw),
    "gesture": build_gesture_net,
    "vgg16": build_vgg16,
    "wide_deep": build_wide_deep,
    "pointnet": build_pointnet,
    "isp_unet": build_isp_unet,
    "detector": build_detector,
    "siamese": build_siamese_tracker,
}


def build_model(name: str, **kwargs) -> Graph:
    """Build a zoo model by name with builder-specific kwargs."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise GraphError(
            f"unknown model {name!r}; known: {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(**kwargs)
