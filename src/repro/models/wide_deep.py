"""Wide & Deep recommendation model (Cheng et al.) — an Ascend-Max
training workload (Table 1)."""

from __future__ import annotations

from ..dtypes import DType, FP16, INT32
from ..graph import Graph, GraphBuilder

__all__ = ["build_wide_deep"]


def build_wide_deep(batch: int = 512, sparse_features: int = 26,
                    dense_features: int = 13, embed_dim: int = 16,
                    vocab_size: int = 200_000,
                    hidden: tuple = (1024, 512, 256),
                    dtype: DType = FP16) -> Graph:
    """Criteo-style Wide&Deep: embeddings + MLP deep path, linear wide path."""
    b = GraphBuilder(f"wide_deep_b{batch}", dtype)
    sparse = b.input("sparse_ids", (batch, sparse_features), dtype=INT32)
    dense = b.input("dense_feats", (batch, dense_features))

    b.group("embed")
    emb = b.embedding(sparse, vocab_size, embed_dim, name="embedding")
    from ..graph.ops import Reshape
    from ..graph.tensor import TensorSpec

    emb_flat = TensorSpec("emb_flat", (batch, sparse_features * embed_dim), dtype)
    b.graph.add(Reshape(name="emb_reshape", inputs=(emb,), output=emb_flat,
                        group="embed"))

    b.group("deep0")
    deep_in = b.dense(dense, sparse_features * embed_dim, name="dense_proj")
    x = b.add(emb_flat, deep_in, name="deep_concat")
    for i, width in enumerate(hidden, start=1):
        b.group(f"deep{i}")
        x = b.dense(x, width, name=f"deep_fc{i}")
        x = b.relu(x)
    b.group("head")
    deep_out = b.dense(x, 1, name="deep_out")
    wide_out = b.dense(dense, 1, name="wide_out")
    out = b.add(deep_out, wide_out, name="logit")
    b.activation(out, "sigmoid", name="prob")
    return b.build()
