"""Model zoo: the workloads the paper evaluates (Table 1, Figures 4-9).

All models are built on the graph IR with exact per-layer shapes, so MAC
and element counts match the published architectures.
"""

from .resnet import build_resnet50, build_resnet18
from .mobilenet import build_mobilenet_v2
from .bert import build_bert, BERT_BASE, BERT_LARGE, BertConfig
from .detection import build_detector, build_siamese_tracker
from .gesture import build_gesture_net
from .gpt import (GPT_MEDIUM, GPT_SMALL, GPT_TINY, GptConfig, build_gpt,
                  build_gpt_decode)
from .isp import build_isp_unet
from .pointnet import build_pointnet
from .vgg import build_vgg16
from .wide_deep import build_wide_deep
from .training import training_workloads, optimizer_workload
from .zoo import MODEL_BUILDERS, build_model

__all__ = [
    "build_resnet50",
    "build_resnet18",
    "build_mobilenet_v2",
    "build_bert",
    "BERT_BASE",
    "BERT_LARGE",
    "BertConfig",
    "GptConfig",
    "GPT_TINY",
    "GPT_SMALL",
    "GPT_MEDIUM",
    "build_gpt",
    "build_gpt_decode",
    "build_gesture_net",
    "build_vgg16",
    "build_wide_deep",
    "build_detector",
    "build_pointnet",
    "build_isp_unet",
    "build_siamese_tracker",
    "training_workloads",
    "optimizer_workload",
    "MODEL_BUILDERS",
    "build_model",
]
