"""Decoder-only GPT-style transformer — the serving-layer workload.

Unlike the BERT encoder (one forward pass per request), a generative
decoder has two phases with very different hardware behavior, and the
serving simulator (:mod:`repro.serving`) needs both as separate graphs:

* **Prefill** (:func:`build_gpt`): the whole prompt runs through the
  stack at once — big ``seq x hidden`` GEMMs, cube-bound, one pass per
  request.  Structurally this is the BERT encoder with causal attention
  and no pooler; the cost model treats the causal mask as a vector pass
  over the score matrix.
* **Decode** (:func:`build_gpt_decode`): one token per step, attending
  over the resident KV cache — ``m = batch`` GEMMs that starve the cube
  and stream the whole cache through the memory system every step.  The
  KV caches appear as graph *inputs* so their bytes land in the
  bandwidth accounting, and the LM head (hidden -> vocab) runs here,
  once per generated token.

Per-token KV residency is ``2 * layers * hidden * dtype.bytes``
(:meth:`GptConfig.kv_bytes_per_token`) — the quantity the serving
layer's admission control charges against the design point's memory
capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtypes import DType, FP16, INT32
from ..errors import GraphError
from ..graph import Graph, GraphBuilder, TensorSpec

__all__ = [
    "GptConfig",
    "GPT_TINY",
    "GPT_SMALL",
    "GPT_MEDIUM",
    "build_gpt",
    "build_gpt_decode",
]


@dataclass(frozen=True)
class GptConfig:
    """Decoder-only transformer hyperparameters."""

    name: str
    hidden: int
    layers: int
    heads: int
    intermediate: int
    vocab_size: int = 50257
    max_context: int = 2048

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise GraphError(
                f"{self.name}: hidden {self.hidden} not divisible by "
                f"heads {self.heads}"
            )
        if self.max_context < 1:
            raise GraphError(f"{self.name}: max_context must be positive")

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads

    def kv_bytes_per_token(self, dtype: DType = FP16) -> int:
        """Resident KV-cache bytes one token pins across all layers."""
        return int(2 * self.layers * self.hidden * dtype.bytes)

    def param_count(self) -> int:
        """Approximate parameter count (weights only, tied embeddings)."""
        per_layer = (
            4 * self.hidden * self.hidden          # qkv + output projection
            + 2 * self.hidden * self.intermediate  # ffn halves
        )
        return self.layers * per_layer + self.vocab_size * self.hidden


# A deliberately small config for smoke campaigns: compiles in well under
# a second per (batch, context) bucket, yet exercises every phase.
GPT_TINY = GptConfig("gpt-tiny", hidden=256, layers=4, heads=4,
                     intermediate=1024, vocab_size=8192, max_context=1024)
# GPT-2 124M class — the smallest "real" decoder.
GPT_SMALL = GptConfig("gpt-small", hidden=768, layers=12, heads=12,
                      intermediate=3072)
# GPT-2 355M class.
GPT_MEDIUM = GptConfig("gpt-medium", hidden=1024, layers=24, heads=16,
                       intermediate=4096)


def _reshape(b: GraphBuilder, src: TensorSpec, dst: TensorSpec) -> None:
    """Head split/merge via the IR's Reshape node."""
    from ..graph.ops import Reshape

    b.graph.add(
        Reshape(name=f"reshape_{dst.name}", inputs=(src,), output=dst,
                group=b._group)
    )


def _decoder_layer(b: GraphBuilder, x: TensorSpec, cfg: GptConfig,
                   index: int) -> TensorSpec:
    """One causal self-attention block over the in-flight sequence."""
    batch, seq, hidden = x.shape
    prefix = f"L{index}"

    b.group(f"{prefix}.qkv")
    q = b.dense(x, hidden, name=f"{prefix}_q")
    k = b.dense(x, hidden, name=f"{prefix}_k")
    v = b.dense(x, hidden, name=f"{prefix}_v")

    b.group(f"{prefix}.attn")
    q_heads = TensorSpec(f"{prefix}_qh", (batch * cfg.heads, seq, cfg.head_dim),
                         x.dtype)
    k_heads = TensorSpec(f"{prefix}_kh", (batch * cfg.heads, seq, cfg.head_dim),
                         x.dtype)
    v_heads = TensorSpec(f"{prefix}_vh", (batch * cfg.heads, seq, cfg.head_dim),
                         x.dtype)
    _reshape(b, q, q_heads)
    _reshape(b, k, k_heads)
    _reshape(b, v, v_heads)
    scores = b.batch_matmul(q_heads, k_heads, transpose_b=True,
                            name=f"{prefix}_scores")
    # The causal mask is folded into the softmax's vector pass over the
    # score matrix (additive -inf mask, no separate sweep).
    probs = b.softmax(scores, name=f"{prefix}_probs")
    context = b.batch_matmul(probs, v_heads, name=f"{prefix}_context")

    b.group(f"{prefix}.proj")
    ctx_flat = TensorSpec(f"{prefix}_ctx", (batch, seq, hidden), x.dtype)
    _reshape(b, context, ctx_flat)
    attn_out = b.dense(ctx_flat, hidden, name=f"{prefix}_attn_out")
    attn_out = b.add(attn_out, x)
    attn_out = b.layer_norm(attn_out, name=f"{prefix}_ln1")

    b.group(f"{prefix}.ffn1")
    ffn = b.dense(attn_out, cfg.intermediate, name=f"{prefix}_ffn1")
    ffn = b.activation(ffn, "gelu")
    b.group(f"{prefix}.ffn2")
    ffn = b.dense(ffn, hidden, name=f"{prefix}_ffn2")
    ffn = b.add(ffn, attn_out)
    return b.layer_norm(ffn, name=f"{prefix}_ln2")


def build_gpt(cfg: GptConfig = GPT_SMALL, batch: int = 1, seq: int = 64,
              dtype: DType = FP16, include_embeddings: bool = True) -> Graph:
    """Build the **prefill** graph: the whole prompt in one pass.

    The LM head is deliberately absent — in a serving deployment only
    the last prompt position needs logits, and that projection is
    charged to the first decode step (:func:`build_gpt_decode`), so
    prefill cycles measure exactly the prompt-ingestion work.
    """
    if seq > cfg.max_context:
        raise GraphError(
            f"{cfg.name}: seq {seq} exceeds max_context {cfg.max_context}")
    b = GraphBuilder(f"{cfg.name}_prefill_b{batch}_s{seq}", dtype)
    if include_embeddings:
        ids = b.input("token_ids", (batch, seq), dtype=INT32)
        b.group("embed")
        x = b.embedding(ids, cfg.vocab_size, cfg.hidden, name="embedding")
        x = b.layer_norm(x, name="embed_ln")
    else:
        x = b.input("hidden_in", (batch, seq, cfg.hidden))
    for layer in range(cfg.layers):
        x = _decoder_layer(b, x, cfg, layer)
    b.group("final_ln")
    b.layer_norm(x, name="final_ln")
    return b.build()


def build_gpt_decode(cfg: GptConfig = GPT_SMALL, batch: int = 1,
                     context: int = 128, dtype: DType = FP16) -> Graph:
    """Build one **decode** step: ``batch`` tokens against resident KV.

    Every per-layer K/V cache is a graph *input* of shape
    ``(batch * heads, context, head_dim)``: the cache bytes flow through
    the input-traffic accounting, which is what makes decode
    memory-bound in the compiled cost model, exactly as on hardware.
    Ends with the LM head — one vocab projection per generated token.
    """
    if context < 1:
        raise GraphError(f"{cfg.name}: decode context must be positive")
    if context > cfg.max_context:
        raise GraphError(
            f"{cfg.name}: context {context} exceeds max_context "
            f"{cfg.max_context}")
    b = GraphBuilder(f"{cfg.name}_decode_b{batch}_c{context}", dtype)
    x = b.input("hidden_in", (batch, 1, cfg.hidden))
    for layer in range(cfg.layers):
        prefix = f"L{layer}"
        b.group(f"{prefix}.qkv")
        q = b.dense(x, cfg.hidden, name=f"{prefix}_q")
        # The step's own K/V are computed and appended to the cache.
        b.dense(x, cfg.hidden, name=f"{prefix}_k")
        b.dense(x, cfg.hidden, name=f"{prefix}_v")

        b.group(f"{prefix}.attn")
        k_cache = b.input(f"{prefix}_k_cache",
                          (batch * cfg.heads, context, cfg.head_dim))
        v_cache = b.input(f"{prefix}_v_cache",
                          (batch * cfg.heads, context, cfg.head_dim))
        q_heads = TensorSpec(f"{prefix}_qh",
                             (batch * cfg.heads, 1, cfg.head_dim), x.dtype)
        _reshape(b, q, q_heads)
        scores = b.batch_matmul(q_heads, k_cache, transpose_b=True,
                                name=f"{prefix}_scores")
        probs = b.softmax(scores, name=f"{prefix}_probs")
        context_t = b.batch_matmul(probs, v_cache, name=f"{prefix}_context")

        b.group(f"{prefix}.proj")
        ctx_flat = TensorSpec(f"{prefix}_ctx", (batch, 1, cfg.hidden), x.dtype)
        _reshape(b, context_t, ctx_flat)
        attn_out = b.dense(ctx_flat, cfg.hidden, name=f"{prefix}_attn_out")
        attn_out = b.add(attn_out, x)
        attn_out = b.layer_norm(attn_out, name=f"{prefix}_ln1")

        b.group(f"{prefix}.ffn1")
        ffn = b.dense(attn_out, cfg.intermediate, name=f"{prefix}_ffn1")
        ffn = b.activation(ffn, "gelu")
        b.group(f"{prefix}.ffn2")
        ffn = b.dense(ffn, cfg.hidden, name=f"{prefix}_ffn2")
        ffn = b.add(ffn, attn_out)
        x = b.layer_norm(ffn, name=f"{prefix}_ln2")

    b.group("lm_head")
    x = b.layer_norm(x, name="final_ln")
    b.dense(x, cfg.vocab_size, bias=False, name="lm_head")
    return b.build()
