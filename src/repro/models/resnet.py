"""ResNet (He et al., 2016) — the Ascend / Ascend-Mini reference workload.

Layer groups follow the paper's per-layer plots: each bottleneck block is
one group covering its convolutions, batch norms, activations and the
residual add.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..dtypes import DType, FP16
from ..graph import Graph, GraphBuilder, TensorSpec

__all__ = ["build_resnet50", "build_resnet18"]

_STAGE_CHANNELS = (64, 128, 256, 512)


def _stem(b: GraphBuilder, x: TensorSpec) -> TensorSpec:
    b.group("conv1")
    x = b.conv2d(x, 64, kernel=7, stride=2, padding=3, bias=False, name="conv1")
    x = b.batch_norm(x)
    x = b.relu(x)
    b.group("pool1")
    return b.pool2d(x, kernel=3, stride=2, padding=1, mode="max")


def _bottleneck(b: GraphBuilder, x: TensorSpec, mid: int, out: int,
                stride: int, label: str) -> TensorSpec:
    b.group(label)
    shortcut = x
    y = b.conv2d(x, mid, kernel=1, bias=False)
    y = b.batch_norm(y)
    y = b.relu(y)
    y = b.conv2d(y, mid, kernel=3, stride=stride, padding=1, bias=False)
    y = b.batch_norm(y)
    y = b.relu(y)
    y = b.conv2d(y, out, kernel=1, bias=False)
    y = b.batch_norm(y)
    if stride != 1 or shortcut.shape[-1] != out:
        shortcut = b.conv2d(shortcut, out, kernel=1, stride=stride, bias=False)
        shortcut = b.batch_norm(shortcut)
    y = b.add(y, shortcut)
    return b.relu(y)


def _basic_block(b: GraphBuilder, x: TensorSpec, out: int, stride: int,
                 label: str) -> TensorSpec:
    b.group(label)
    shortcut = x
    y = b.conv2d(x, out, kernel=3, stride=stride, padding=1, bias=False)
    y = b.batch_norm(y)
    y = b.relu(y)
    y = b.conv2d(y, out, kernel=3, padding=1, bias=False)
    y = b.batch_norm(y)
    if stride != 1 or shortcut.shape[-1] != out:
        shortcut = b.conv2d(shortcut, out, kernel=1, stride=stride, bias=False)
        shortcut = b.batch_norm(shortcut)
    y = b.add(y, shortcut)
    return b.relu(y)


def _head(b: GraphBuilder, x: TensorSpec, classes: int) -> Graph:
    b.group("fc")
    x = b.global_avg_pool(x)
    x = b.dense(x, classes, name="fc")
    b.softmax(x)
    return b.build()


def build_resnet50(batch: int = 1, image: int = 224, classes: int = 1000,
                   dtype: DType = FP16) -> Graph:
    """ResNet-50 v1.5 (stride-2 in the 3x3 conv, as the MLPerf variant)."""
    b = GraphBuilder(f"resnet50_b{batch}", dtype)
    x = b.input("image", (batch, image, image, 3))
    x = _stem(b, x)
    blocks = (3, 4, 6, 3)
    for stage, (count, width) in enumerate(zip(blocks, _STAGE_CHANNELS), start=2):
        for i in range(count):
            stride = 2 if (i == 0 and stage > 2) else 1
            x = _bottleneck(b, x, width, width * 4, stride,
                            label=f"conv{stage}_{i + 1}")
    return _head(b, x, classes)


def build_resnet18(batch: int = 1, image: int = 224, classes: int = 1000,
                   dtype: DType = FP16) -> Graph:
    """ResNet-18 — a smaller variant used by tests and examples."""
    b = GraphBuilder(f"resnet18_b{batch}", dtype)
    x = b.input("image", (batch, image, image, 3))
    x = _stem(b, x)
    blocks = (2, 2, 2, 2)
    for stage, (count, width) in enumerate(zip(blocks, _STAGE_CHANNELS), start=2):
        for i in range(count):
            stride = 2 if (i == 0 and stage > 2) else 1
            x = _basic_block(b, x, width, stride, label=f"conv{stage}_{i + 1}")
    return _head(b, x, classes)
