"""PointNet (Qi et al.) — Table 1's "Pointsnet Series" workload.

Point clouds are (B, N, 3); per-point shared MLPs are Dense layers over
the point axis (exactly how the Ascend compiler maps them: 1x1
convolutions become GEMMs with m = B*N), followed by a global max pool
over points (a vector reduction) and a classification head.
"""

from __future__ import annotations

from ..dtypes import DType, FP16
from ..graph import Graph, GraphBuilder, TensorSpec
from ..graph.ops import Reshape

__all__ = ["build_pointnet"]


def build_pointnet(batch: int = 1, points: int = 1024, classes: int = 40,
                   dtype: DType = FP16) -> Graph:
    """PointNet classifier (vanilla, no T-Net) over ``points`` points."""
    b = GraphBuilder(f"pointnet_b{batch}", dtype)
    x = b.input("cloud", (batch, points, 3))

    # Per-point shared MLP: 64 -> 64 -> 64 -> 128 -> 1024.
    for i, width in enumerate((64, 64, 64, 128, 1024), start=1):
        b.group(f"mlp{i}")
        x = b.dense(x, width, name=f"mlp{i}")
        x = b.batch_norm(x)
        x = b.relu(x)

    # Global feature: max over points (vector reduction); the IR's
    # reduction op works on the last axis, so transpose via reshape to
    # (batch, 1024, points) is folded into the pooling workload here —
    # modeled as a GlobalAvgPool-class reduction over N*1024 elements.
    b.group("maxpool")
    pooled_in = TensorSpec("pool_view", (batch, points, 1, 1024), dtype)
    b.graph.add(Reshape(name="pool_reshape", inputs=(x,), output=pooled_in,
                        group="maxpool"))
    x = b.pool2d(pooled_in, kernel=(points, 1), stride=(points, 1),
                 mode="max", name="global_max")
    flat = TensorSpec("global_feat", (batch, 1024), dtype)
    b.graph.add(Reshape(name="feat_reshape", inputs=(x,), output=flat,
                        group="maxpool"))

    # Classification head: 512 -> 256 -> classes.
    b.group("head")
    h = b.dense(flat, 512, name="fc1")
    h = b.batch_norm(h)
    h = b.relu(h)
    h = b.dense(h, 256, name="fc2")
    h = b.relu(h)
    logits = b.dense(h, classes, name="fc3")
    b.softmax(logits)
    return b.build()
