"""Training workload synthesis: backward-pass + optimizer work per layer.

Rather than materializing a backward graph, each forward op's workload is
transformed by the standard backprop algebra:

* a forward GEMM ``C[M,N] = A[M,K] B[K,N]`` spawns two backward GEMMs —
  ``dA = dC B^T`` (M x N x K) and ``dB = A^T dC`` (K x M x N);
* vector ops roughly double their passes backward (recompute + mask /
  chain-rule arithmetic);
* every weight gets an optimizer update (momentum-SGD: ~3 vector passes).

This is exactly the structural reason Figure 5's (training) ratios sit
below Figure 4's (inference): cube work triples while vector work grows
by ~2.5x plus optimizer traffic.
"""

from __future__ import annotations

from typing import List, Tuple

from ..dtypes import FP32
from ..graph import Graph, GemmWork, OpWorkload, VectorWork
from ..graph.ops import Input

__all__ = ["training_workloads", "optimizer_workload", "backward_workload"]

_OPTIMIZER_PASSES = 3  # read grad, update momentum, apply — momentum SGD
_BACKWARD_VECTOR_FACTOR = 2


def backward_workload(forward: OpWorkload) -> OpWorkload:
    """Backward-pass workload derived from one forward workload."""
    bwd_gemms: List[GemmWork] = []
    for g in forward.gemms:
        bwd_gemms.append(GemmWork(m=g.m, k=g.n, n=g.k, dtype=g.dtype,
                                  count=g.count))  # dA = dC @ B^T
        bwd_gemms.append(GemmWork(m=g.k, k=g.m, n=g.n, dtype=g.dtype,
                                  count=g.count))  # dB = A^T @ dC
    bwd_vector: List[VectorWork] = [
        VectorWork(v.elems, v.passes * _BACKWARD_VECTOR_FACTOR, v.dtype)
        for v in forward.vector
    ]
    return OpWorkload(
        name=f"{forward.name}.bwd",
        gemms=tuple(bwd_gemms),
        vector=tuple(bwd_vector),
        weight_bytes=forward.weight_bytes,
        # Backward re-reads activations and writes gradients of like size.
        input_bytes=forward.output_bytes + forward.input_bytes,
        output_bytes=forward.input_bytes,
    )


def optimizer_workload(forward: OpWorkload) -> OpWorkload:
    """Momentum-SGD update over this op's parameters (fp32 master copy)."""
    if forward.weight_bytes == 0:
        return OpWorkload(name=f"{forward.name}.opt")
    param_elems = int(forward.weight_bytes / 2)  # fp16 storage
    return OpWorkload(
        name=f"{forward.name}.opt",
        vector=(VectorWork(param_elems, _OPTIMIZER_PASSES, FP32),),
        input_bytes=forward.weight_bytes * 2,
        output_bytes=forward.weight_bytes * 2,
    )


def training_workloads(graph: Graph,
                       include_optimizer: bool = True
                       ) -> List[Tuple[str, OpWorkload]]:
    """Per layer-group fwd+bwd(+optimizer) workloads, in forward order.

    This is the workload Figure 5 (BERT training) and Figure 9 (BERT
    forward+backward) profile.
    """
    merged: List[Tuple[str, OpWorkload]] = []
    for group, fwd in graph.grouped_workloads():
        total = fwd
        bwd = backward_workload(fwd)
        total = total.merged(bwd, name=group)
        if include_optimizer:
            total = total.merged(optimizer_workload(fwd), name=group)
        merged.append((group, total))
    return merged
