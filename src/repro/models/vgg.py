"""VGG-16 (Simonyan & Zisserman) — an Ascend-Mini reference workload
(Table 1 lists "Resnet, VGG" for drones/robots/embedded AI)."""

from __future__ import annotations

from ..dtypes import DType, FP16
from ..graph import Graph, GraphBuilder

__all__ = ["build_vgg16"]

_CFG = ((64, 2), (128, 2), (256, 3), (512, 3), (512, 3))


def build_vgg16(batch: int = 1, image: int = 224, classes: int = 1000,
                dtype: DType = FP16) -> Graph:
    b = GraphBuilder(f"vgg16_b{batch}", dtype)
    x = b.input("image", (batch, image, image, 3))
    for stage, (channels, repeats) in enumerate(_CFG, start=1):
        for i in range(repeats):
            b.group(f"conv{stage}_{i + 1}")
            x = b.conv2d(x, channels, kernel=3, padding=1,
                         name=f"conv{stage}_{i + 1}")
            x = b.relu(x)
        b.group(f"pool{stage}")
        x = b.pool2d(x, kernel=2, stride=2, mode="max")
    # Classifier: 7x7x512 -> 4096 -> 4096 -> classes.
    bsz, h, w, c = x.shape
    from ..graph.ops import Reshape
    from ..graph.tensor import TensorSpec

    flat = TensorSpec("flatten_out", (bsz, h * w * c), x.dtype)
    b.group("fc6")
    b.graph.add(Reshape(name="flatten", inputs=(x,), output=flat, group="fc6"))
    x = b.dense(flat, 4096, name="fc6")
    x = b.relu(x)
    b.group("fc7")
    x = b.dense(x, 4096, name="fc7")
    x = b.relu(x)
    b.group("fc8")
    x = b.dense(x, classes, name="fc8")
    b.softmax(x)
    return b.build()
