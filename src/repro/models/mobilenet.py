"""MobileNetV2 (Sandler et al.) — the Ascend-Lite reference workload.

Depthwise convolutions execute on the vector unit (see
:class:`~repro.graph.ops.DepthwiseConv2D`), which is why this network's
cube/vector ratios sit between 0 and 1 (Figure 6) and why Ascend-Lite
keeps a relatively wide vector unit (Section 2.4).
"""

from __future__ import annotations

from ..dtypes import DType, FP16
from ..graph import Graph, GraphBuilder, TensorSpec

__all__ = ["build_mobilenet_v2"]

# (expansion t, output channels c, repeats n, first stride s)
_INVERTED_RESIDUAL_CFG = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _inverted_residual(b: GraphBuilder, x: TensorSpec, expand: int, out: int,
                       stride: int, label: str) -> TensorSpec:
    b.group(label)
    in_ch = x.shape[-1]
    shortcut = x
    y = x
    if expand != 1:
        y = b.conv2d(y, in_ch * expand, kernel=1, bias=False)
        y = b.batch_norm(y)
        y = b.activation(y, "relu6")
    y = b.depthwise_conv2d(y, kernel=3, stride=stride, padding=1, bias=False)
    y = b.batch_norm(y)
    y = b.activation(y, "relu6")
    y = b.conv2d(y, out, kernel=1, bias=False)
    y = b.batch_norm(y)
    if stride == 1 and in_ch == out:
        y = b.add(y, shortcut)
    return y


def build_mobilenet_v2(batch: int = 1, image: int = 224, classes: int = 1000,
                       width_mult: float = 1.0, dtype: DType = FP16) -> Graph:
    """MobileNetV2 at a given width multiplier."""

    def scaled(c: int) -> int:
        return max(8, int(round(c * width_mult / 8)) * 8)

    b = GraphBuilder(f"mobilenetv2_b{batch}", dtype)
    x = b.input("image", (batch, image, image, 3))
    b.group("conv1")
    x = b.conv2d(x, scaled(32), kernel=3, stride=2, padding=1, bias=False,
                 name="conv1")
    x = b.batch_norm(x)
    x = b.activation(x, "relu6")
    block = 0
    for t, c, n, s in _INVERTED_RESIDUAL_CFG:
        for i in range(n):
            block += 1
            x = _inverted_residual(b, x, t, scaled(c), s if i == 0 else 1,
                                   label=f"block{block}")
    b.group("conv_last")
    x = b.conv2d(x, scaled(1280), kernel=1, bias=False)
    x = b.batch_norm(x)
    x = b.activation(x, "relu6")
    b.group("fc")
    x = b.global_avg_pool(x)
    x = b.dense(x, classes, name="fc")
    b.softmax(x)
    return b.build()
