"""BERT encoder (Devlin et al.) — the Ascend-Max reference workload.

Layer groups are per sub-operation within each encoder layer (qkv,
attention, output projection, FFN halves); the per-group cube/vector
ratios reproduce Figure 4's spread: projection/FFN groups sit far above
1 while attention-score groups (dominated by softmax) dip toward or
below it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtypes import DType, FP16, INT32
from ..errors import GraphError
from ..graph import Graph, GraphBuilder, TensorSpec

__all__ = ["BertConfig", "BERT_BASE", "BERT_LARGE", "build_bert"]


@dataclass(frozen=True)
class BertConfig:
    """Transformer encoder hyperparameters."""

    name: str
    hidden: int
    layers: int
    heads: int
    intermediate: int
    vocab_size: int = 30522

    def __post_init__(self) -> None:
        if self.hidden % self.heads:
            raise GraphError(
                f"{self.name}: hidden {self.hidden} not divisible by heads {self.heads}"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden // self.heads


BERT_BASE = BertConfig("bert-base", hidden=768, layers=12, heads=12,
                       intermediate=3072)
BERT_LARGE = BertConfig("bert-large", hidden=1024, layers=24, heads=16,
                        intermediate=4096)


def _encoder_layer(b: GraphBuilder, x: TensorSpec, cfg: BertConfig,
                   index: int) -> TensorSpec:
    batch, seq, hidden = x.shape
    prefix = f"L{index}"

    # Multi-head attention: QKV projections (one group — they share shape).
    b.group(f"{prefix}.qkv")
    q = b.dense(x, hidden, name=f"{prefix}_q")
    k = b.dense(x, hidden, name=f"{prefix}_k")
    v = b.dense(x, hidden, name=f"{prefix}_v")

    # Scores + softmax: (B*H, S, D) @ (B*H, S, D)^T -> (B*H, S, S).
    b.group(f"{prefix}.attn")
    q_heads = TensorSpec(f"{prefix}_qh", (batch * cfg.heads, seq, cfg.head_dim), x.dtype)
    k_heads = TensorSpec(f"{prefix}_kh", (batch * cfg.heads, seq, cfg.head_dim), x.dtype)
    v_heads = TensorSpec(f"{prefix}_vh", (batch * cfg.heads, seq, cfg.head_dim), x.dtype)
    _reshape(b, q, q_heads)
    _reshape(b, k, k_heads)
    _reshape(b, v, v_heads)
    scores = b.batch_matmul(q_heads, k_heads, transpose_b=True,
                            name=f"{prefix}_scores")
    probs = b.softmax(scores, name=f"{prefix}_probs")
    context = b.batch_matmul(probs, v_heads, name=f"{prefix}_context")

    # Output projection + residual + LayerNorm.
    b.group(f"{prefix}.proj")
    ctx_flat = TensorSpec(f"{prefix}_ctx", (batch, seq, hidden), x.dtype)
    _reshape(b, context, ctx_flat)
    attn_out = b.dense(ctx_flat, hidden, name=f"{prefix}_attn_out")
    attn_out = b.add(attn_out, x)
    attn_out = b.layer_norm(attn_out, name=f"{prefix}_ln1")

    # Feed-forward halves.
    b.group(f"{prefix}.ffn1")
    ffn = b.dense(attn_out, cfg.intermediate, name=f"{prefix}_ffn1")
    ffn = b.activation(ffn, "gelu")
    b.group(f"{prefix}.ffn2")
    ffn = b.dense(ffn, hidden, name=f"{prefix}_ffn2")
    ffn = b.add(ffn, attn_out)
    return b.layer_norm(ffn, name=f"{prefix}_ln2")


def _reshape(b: GraphBuilder, src: TensorSpec, dst: TensorSpec) -> None:
    """Head split/merge via the IR's Reshape node."""
    from ..graph.ops import Reshape

    b.graph.add(
        Reshape(name=f"reshape_{dst.name}", inputs=(src,), output=dst,
                group=b._group)
    )


def build_bert(cfg: BertConfig = BERT_BASE, batch: int = 1, seq: int = 128,
               dtype: DType = FP16, include_embeddings: bool = True) -> Graph:
    """Build a BERT encoder graph (inference forward pass)."""
    b = GraphBuilder(f"{cfg.name}_b{batch}_s{seq}", dtype)
    if include_embeddings:
        ids = b.input("token_ids", (batch, seq), dtype=INT32)
        b.group("embed")
        x = b.embedding(ids, cfg.vocab_size, cfg.hidden, name="embedding")
        x = b.layer_norm(x, name="embed_ln")
    else:
        x = b.input("hidden_in", (batch, seq, cfg.hidden))
    for layer in range(cfg.layers):
        x = _encoder_layer(b, x, cfg, layer)
    b.group("pooler")
    b.dense(x, cfg.hidden, name="pooler")
    return b.build()
