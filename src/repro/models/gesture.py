"""Gesture-inference CNN — the Ascend-Tiny reference workload (Figure 8).

Huawei does not publish this network; the stand-in is a small int8
always-on CNN in the style of wake-up/gesture detectors (~100k params,
~20 MOPs at 96x96 gray input).  Every layer's cube/vector ratio exceeds 1
on the Tiny configuration, matching the paper's observation.
"""

from __future__ import annotations

from ..dtypes import DType, INT8
from ..graph import Graph, GraphBuilder

__all__ = ["build_gesture_net"]


def build_gesture_net(batch: int = 1, image: int = 96, classes: int = 8,
                      dtype: DType = INT8) -> Graph:
    """A 6-conv int8 gesture classifier."""
    b = GraphBuilder(f"gesture_b{batch}", dtype)
    x = b.input("frame", (batch, image, image, 1))
    channels = (8, 16, 32, 32, 64, 64)
    for i, ch in enumerate(channels, start=1):
        b.group(f"conv{i}")
        stride = 2 if i in (1, 3, 5) else 1
        # int8 deployment folds bias into the requantization step that
        # rides the L0C -> UB move, so the conv itself carries no bias op.
        x = b.conv2d(x, ch, kernel=3, stride=stride, padding=1, bias=False,
                     name=f"conv{i}")
        x = b.relu(x)
    b.group("fc")
    x = b.global_avg_pool(x)
    x = b.dense(x, classes, name="fc")
    b.softmax(x)
    return b.build()
