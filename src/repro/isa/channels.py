"""The flag-channel id map shared by the compiler and the timing engine.

A *channel* is the (src_pipe, dst_pipe, event_id) triple a
``set_flag``/``wait_flag`` pair synchronizes on.  The compiler assigns one
purpose per event id (FIFO per channel); the timing engine keys its
channel FIFOs by the packed integer form.  Both sides — and the tests —
import this module, so the table exists exactly once.

GEMM pipeline events (``lower_gemm``):

====  =================  ==========================================
id    channel            meaning
====  =================  ==========================================
0     MTE2 -> MTE1       L1 stage (A strip + B panel) ready
1     MTE1 -> MTE2       L1 stage slot released
2     MTE1 -> M          L0A/L0B feed ready
3     M -> MTE1          L0 feed slot released
4     M -> V             L0C output tile complete
5     V -> M             L0C slot released
6     V -> MTE3          UB tile ready
7     MTE3 -> V          UB slot released
9     M -> MTE1          resident B column retired (weight-stationary)
====  =================  ==========================================

Vector streaming events (``lower_vector_work``) reuse low ids on
disjoint pipe pairs — channels are triples, so there is no collision:

====  =================  ==========================================
id    channel            meaning
====  =================  ==========================================
0     V -> MTE2          UB chunk slot released
1     MTE2 -> V          UB chunk ready
2     V -> MTE3          UB chunk result ready
====  =================  ==========================================
"""

from __future__ import annotations

from typing import Dict, Tuple

from .pipes import Pipe

__all__ = [
    "EV_L1_STAGE_READY",
    "EV_L1_STAGE_FREE",
    "EV_L0_FEED_READY",
    "EV_L0_FEED_FREE",
    "EV_L0C_TILE_READY",
    "EV_L0C_TILE_FREE",
    "EV_UB_TILE_READY",
    "EV_UB_TILE_FREE",
    "EV_B_RESIDENT_FREE",
    "EV_VEC_SLOT_FREE",
    "EV_VEC_CHUNK_READY",
    "EV_VEC_RESULT_READY",
    "GEMM_CHANNELS",
    "VECTOR_CHANNELS",
    "N_PIPES",
    "pack_channel",
    "unpack_channel",
]

# -- GEMM pipeline event ids (one purpose per id) -----------------------------

EV_L1_STAGE_READY = 0   # MTE2 -> MTE1
EV_L1_STAGE_FREE = 1    # MTE1 -> MTE2
EV_L0_FEED_READY = 2    # MTE1 -> M
EV_L0_FEED_FREE = 3     # M -> MTE1
EV_L0C_TILE_READY = 4   # M -> V
EV_L0C_TILE_FREE = 5    # V -> M
EV_UB_TILE_READY = 6    # V -> MTE3
EV_UB_TILE_FREE = 7     # MTE3 -> V
EV_B_RESIDENT_FREE = 9  # M -> MTE1 (weight-stationary schedule only)

# -- vector streaming event ids ----------------------------------------------

EV_VEC_SLOT_FREE = 0     # V -> MTE2
EV_VEC_CHUNK_READY = 1   # MTE2 -> V
EV_VEC_RESULT_READY = 2  # V -> MTE3

_Channel = Tuple[Pipe, Pipe, int]

GEMM_CHANNELS: Dict[_Channel, str] = {
    (Pipe.MTE2, Pipe.MTE1, EV_L1_STAGE_READY): "L1 stage ready",
    (Pipe.MTE1, Pipe.MTE2, EV_L1_STAGE_FREE): "L1 stage slot released",
    (Pipe.MTE1, Pipe.M, EV_L0_FEED_READY): "L0A/L0B feed ready",
    (Pipe.M, Pipe.MTE1, EV_L0_FEED_FREE): "L0 feed slot released",
    (Pipe.M, Pipe.V, EV_L0C_TILE_READY): "L0C output tile complete",
    (Pipe.V, Pipe.M, EV_L0C_TILE_FREE): "L0C slot released",
    (Pipe.V, Pipe.MTE3, EV_UB_TILE_READY): "UB tile ready",
    (Pipe.MTE3, Pipe.V, EV_UB_TILE_FREE): "UB slot released",
    (Pipe.M, Pipe.MTE1, EV_B_RESIDENT_FREE): "resident B column retired",
}

VECTOR_CHANNELS: Dict[_Channel, str] = {
    (Pipe.V, Pipe.MTE2, EV_VEC_SLOT_FREE): "UB chunk slot released",
    (Pipe.MTE2, Pipe.V, EV_VEC_CHUNK_READY): "UB chunk ready",
    (Pipe.V, Pipe.MTE3, EV_VEC_RESULT_READY): "UB chunk result ready",
}

# -- packed integer form ------------------------------------------------------

N_PIPES = len(Pipe)


def pack_channel(src: Pipe, dst: Pipe, event: int) -> int:
    """Pack a (src_pipe, dst_pipe, event_id) channel into one int.

    Pipes hash and index as plain ints (:class:`Pipe` is an ``IntEnum``),
    so the packed form is what the timing engine keys its FIFO tables by
    and what the arena's flag columns reduce to.
    """
    return (event * N_PIPES + src) * N_PIPES + dst


def unpack_channel(packed: int) -> _Channel:
    """Invert :func:`pack_channel`."""
    dst = packed % N_PIPES
    rest = packed // N_PIPES
    return Pipe(rest % N_PIPES), Pipe(dst), rest // N_PIPES
