"""Execution pipes of an Ascend core (Section 2.2, Figure 1/3).

The paper names three instruction queues behind the PSQ — cube, vector and
MTE — plus the scalar unit itself.  The MTE performs three distinct data
movements with independently provisioned buses (Table 5 lists separate A,
B and UB bandwidths), so the reproduction splits it the way the shipped
DaVinci ISA does:

* ``MTE1`` — L1 -> L0A / L0B feeds (including img2col / transpose /
  decompression on the way),
* ``MTE2`` — inbound: global memory / LLC -> L1,
* ``MTE3`` — outbound: UB -> global memory / LLC.
"""

from __future__ import annotations

import enum

__all__ = ["Pipe"]


class Pipe(enum.IntEnum):
    """One in-order execution queue inside the core.

    An ``IntEnum`` so members hash and index as plain ints: the timing
    engine keys per-pipe state by ``int(pipe)`` in its hot loop, which
    avoids ~400k ``Enum.__hash__`` calls per large-model compile.
    """

    S = 0  # scalar
    M = 1  # cube
    V = 2  # vector
    MTE1 = 3
    MTE2 = 4
    MTE3 = 5

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    @classmethod
    def compute_pipes(cls) -> tuple:
        return (cls.M, cls.V)

    @classmethod
    def mte_pipes(cls) -> tuple:
        return (cls.MTE1, cls.MTE2, cls.MTE3)
