"""Program container: an ordered instruction list with static validation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..config.core_configs import CoreConfig
from ..errors import IsaError
from .instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    WaitFlag,
)
from .memref import MemSpace, Region
from .pipes import Pipe

__all__ = ["Program"]

_SPACE_CAPACITY_ATTR = {
    MemSpace.L0A: "l0a_bytes",
    MemSpace.L0B: "l0b_bytes",
    MemSpace.L0C: "l0c_bytes",
    MemSpace.L1: "l1_bytes",
    MemSpace.UB: "ub_bytes",
}


@dataclass
class Program:
    """An ordered list of instructions for one Ascend core.

    The PSQ dispatches these in order into per-pipe queues; therefore
    program order *within* a pipe is execution order, while cross-pipe
    ordering only exists where flags impose it (Figure 3).
    """

    instructions: List[Instruction] = field(default_factory=list)
    name: str = "program"

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, idx):
        return self.instructions[idx]

    def append(self, instr: Instruction) -> None:
        if not isinstance(instr, Instruction):
            raise IsaError(f"not an instruction: {instr!r}")
        self.instructions.append(instr)

    def extend(self, instrs: Iterable[Instruction]) -> None:
        for instr in instrs:
            self.append(instr)

    # -- introspection --------------------------------------------------------

    def by_pipe(self) -> Dict[Pipe, List[Instruction]]:
        """Split into the per-pipe in-order queues the PSQ would fill."""
        queues: Dict[Pipe, List[Instruction]] = {p: [] for p in Pipe}
        for instr in self.instructions:
            queues[instr.pipe].append(instr)
        return queues

    def pipe_counts(self) -> Dict[Pipe, int]:
        counts = Counter(instr.pipe for instr in self.instructions)
        return {p: counts.get(p, 0) for p in Pipe}

    def total_macs(self) -> int:
        return sum(i.macs for i in self.instructions if isinstance(i, CubeMatmul))

    def total_vector_elems(self) -> int:
        return sum(i.elems for i in self.instructions if isinstance(i, VectorInstr))

    # -- validation -----------------------------------------------------------

    def validate(self, config: Optional[CoreConfig] = None) -> None:
        """Check flag pairing and (optionally) scratchpad bounds.

        Raises :class:`IsaError` on the first problem.  Flag pairing is a
        conservative count check per (src, dst, event) channel: every wait
        must have a set, otherwise the core deadlocks; every set must have
        a wait, otherwise a flag register leaks (both are programming
        errors on real hardware).
        """
        sets: Counter = Counter()
        waits: Counter = Counter()
        for instr in self.instructions:
            if isinstance(instr, SetFlag):
                sets[(instr.src_pipe, instr.dst_pipe, instr.event_id)] += 1
            elif isinstance(instr, WaitFlag):
                waits[(instr.src_pipe, instr.dst_pipe, instr.event_id)] += 1
        for channel in set(sets) | set(waits):
            if sets[channel] != waits[channel]:
                src, dst, event = channel
                raise IsaError(
                    f"unbalanced flags on {src}->{dst} event {event}: "
                    f"{sets[channel]} set vs {waits[channel]} wait"
                )
        if config is not None:
            for idx, instr in enumerate(self.instructions):
                for region in _regions_of(instr):
                    self._check_bounds(idx, instr, region, config)

    def _check_bounds(
        self, idx: int, instr: Instruction, region: Region, config: CoreConfig
    ) -> None:
        attr = _SPACE_CAPACITY_ATTR.get(region.space)
        if attr is None:  # GM is unbounded from the core's perspective
            return
        capacity = getattr(config, attr)
        if region.end > capacity:
            raise IsaError(
                f"instruction #{idx} ({type(instr).__name__}) overruns "
                f"{region.space}: needs [{region.offset}, {region.end}) "
                f"but {config.name} provides {capacity} bytes"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        counts = ", ".join(
            f"{pipe}:{count}" for pipe, count in self.pipe_counts().items() if count
        )
        return f"Program({self.name!r}, {len(self)} instrs; {counts})"


def _regions_of(instr: Instruction) -> Tuple[Region, ...]:
    if isinstance(instr, CubeMatmul):
        return (instr.a, instr.b, instr.c)
    if isinstance(instr, VectorInstr):
        return (instr.dst, *instr.srcs)
    if isinstance(instr, (CopyInstr, Img2ColInstr, TransposeInstr, DecompressInstr)):
        return (instr.dst, instr.src)
    return ()
