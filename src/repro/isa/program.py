"""Program container: a thin handle over a columnar instruction arena.

A :class:`Program` can be built either from instruction objects (builder
APIs, TIK/TBE/CCE frontends, tests) or directly from an
:class:`~repro.isa.arena.InstructionArena` (the vectorized lowering fast
path).  Whichever side exists first, the other is derived lazily:

* object-built programs grow an arena on first columnar access
  (validation, cost columns, scheduler prepass);
* arena-built programs materialize instruction objects only when a
  consumer actually iterates rows (functional replay, CCE text,
  encoding) — mirroring how ``TraceEvent`` is a lazy view over the
  columnar trace.

Static validation (flag pairing, scratchpad bounds) runs as masked
column reductions whenever the arena's columns are exact, and falls back
to the per-object walk for exotic rows (scalar ops, img2col, 3-source
vector selects).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..config.core_configs import CoreConfig
from ..errors import IsaError
from .arena import _COLUMN_NAMES as _ARENA_COLUMN_NAMES
from .arena import InstructionArena
from .instructions import (
    OP_CUBE,
    OP_SET,
    OP_VECTOR,
    OP_WAIT,
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    WaitFlag,
)
from .memref import MemSpace, Region
from .pipes import Pipe

__all__ = ["Program"]

_SPACE_CAPACITY_ATTR = {
    MemSpace.L0A: "l0a_bytes",
    MemSpace.L0B: "l0b_bytes",
    MemSpace.L0C: "l0c_bytes",
    MemSpace.L1: "l1_bytes",
    MemSpace.UB: "ub_bytes",
}

# Successful columnar validations, keyed by (kind-column identity,
# config).  Validation is a pure function of the non-tag columns plus
# the design point, so retagged memo siblings — which share every such
# column — validate once for the whole family.  The stored arena
# reference pins the column ids against recycling; only success is
# memoized (failures raise and are never recorded).
_VALIDATE_MEMO: Dict[tuple, tuple] = {}
_VALIDATE_MEMO_CAP = 512
_SHARED_COLS = tuple(c for c in _ARENA_COLUMN_NAMES if c != "tag_id")


class Program:
    """An ordered list of instructions for one Ascend core.

    The PSQ dispatches these in order into per-pipe queues; therefore
    program order *within* a pipe is execution order, while cross-pipe
    ordering only exists where flags impose it (Figure 3).
    """

    __slots__ = ("name", "_instructions", "_arena")

    def __init__(self, instructions: Optional[List[Instruction]] = None,
                 name: str = "program",
                 arena: Optional[InstructionArena] = None) -> None:
        if arena is not None and instructions is not None:
            raise IsaError("pass instructions or an arena, not both")
        self.name = name
        self._arena = arena
        self._instructions: Optional[List[Instruction]] = (
            instructions if instructions is not None
            else (None if arena is not None else []))

    @classmethod
    def from_arena(cls, arena: InstructionArena, name: str = "program"
                   ) -> "Program":
        return cls(arena=arena, name=name)

    # -- the two representations ----------------------------------------------

    @property
    def instructions(self) -> List[Instruction]:
        """The instruction objects (materialized from the arena on first
        access for arena-built programs)."""
        if self._instructions is None:
            self._instructions = self._arena.materialize()
        return self._instructions

    @property
    def arena(self) -> InstructionArena:
        """The columnar form (built from the objects on first access for
        object-built programs)."""
        if self._arena is None:
            self._arena = InstructionArena.from_instructions(
                self._instructions)
        return self._arena

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        if self._instructions is not None:
            return len(self._instructions)
        return self._arena.n

    def __getitem__(self, idx):
        return self.instructions[idx]

    def append(self, instr: Instruction) -> None:
        if not isinstance(instr, Instruction):
            raise IsaError(f"not an instruction: {instr!r}")
        instrs = self.instructions
        if instrs is getattr(self._arena, "_objects", None):
            # Don't mutate the arena's cached view in place.
            instrs = self._instructions = list(instrs)
        self._arena = None  # stale columns
        instrs.append(instr)

    def extend(self, instrs: Iterable[Instruction]) -> None:
        for instr in instrs:
            self.append(instr)

    # -- introspection --------------------------------------------------------

    def by_pipe(self) -> Dict[Pipe, List[Instruction]]:
        """Split into the per-pipe in-order queues the PSQ would fill."""
        queues: Dict[Pipe, List[Instruction]] = {p: [] for p in Pipe}
        for instr in self.instructions:
            queues[instr.pipe].append(instr)
        return queues

    def pipe_counts(self) -> Dict[Pipe, int]:
        if self._arena is not None:
            counts = np.bincount(self._arena.pipe, minlength=len(Pipe))
            return {p: int(counts[p]) for p in Pipe}
        counts = Counter(instr.pipe for instr in self.instructions)
        return {p: counts.get(p, 0) for p in Pipe}

    def total_macs(self) -> int:
        arena = self.arena
        cube = arena.kind == OP_CUBE
        # m*k from A (slot 1), n from B (slot 2).
        return int(np.sum(arena.r_d0[cube, 1] * arena.r_d1[cube, 1]
                          * arena.r_d1[cube, 2]))

    def total_vector_elems(self) -> int:
        arena = self.arena
        vec = arena.kind == OP_VECTOR
        # Source elements when there is a source, else dst (matches
        # VectorInstr.elems: reductions shrink the destination).
        elems = np.where(arena.r_space[:, 1] >= 0,
                         arena.elems[:, 1], arena.elems[:, 0])
        return int(np.sum(elems[vec]))

    # -- validation -----------------------------------------------------------

    def validate(self, config: Optional[CoreConfig] = None) -> None:
        """Check flag pairing and (optionally) scratchpad bounds.

        Raises :class:`IsaError` on the first problem.  Flag pairing is a
        conservative count check per (src, dst, event) channel: every wait
        must have a set, otherwise the core deadlocks; every set must have
        a wait, otherwise a flag register leaks (both are programming
        errors on real hardware).

        Runs as masked column reductions over the arena whenever its
        columns are exact; programs holding rows only their objects can
        describe (scalar ops, img2col, 3-source selects) take the
        per-object walk instead.
        """
        arena = self.arena
        if arena.exact:
            key = (id(arena.kind), config)
            hit = _VALIDATE_MEMO.get(key)
            if (hit is not None
                    and all(getattr(hit[0], c) is getattr(arena, c)
                            for c in _SHARED_COLS)):
                return
            self._validate_columns(arena, config)
            _VALIDATE_MEMO[key] = (arena,)
            while len(_VALIDATE_MEMO) > _VALIDATE_MEMO_CAP:
                _VALIDATE_MEMO.pop(next(iter(_VALIDATE_MEMO)))
        else:
            self._validate_objects(config)

    def _validate_columns(self, arena: InstructionArena,
                          config: Optional[CoreConfig]) -> None:
        from .channels import unpack_channel
        packed = arena.packed_channels()
        sets = packed[arena.kind == OP_SET]
        waits = packed[arena.kind == OP_WAIT]
        if sets.size or waits.size:
            chan, idx = np.unique(np.concatenate((sets, waits)),
                                  return_inverse=True)
            n_set = np.bincount(idx[:sets.size], minlength=chan.size)
            n_wait = np.bincount(idx[sets.size:], minlength=chan.size)
            bad = np.nonzero(n_set != n_wait)[0]
            if bad.size:
                src, dst, event = unpack_channel(int(chan[bad[0]]))
                raise IsaError(
                    f"unbalanced flags on {src}->{dst} event {event}: "
                    f"{int(n_set[bad[0]])} set vs {int(n_wait[bad[0]])} wait"
                )
        if config is None:
            return
        ends = arena.region_ends()
        for space, attr in _SPACE_CAPACITY_ATTR.items():
            capacity = getattr(config, attr)
            over = (arena.r_space == int(space)) & (ends > capacity)
            if over.any():
                row = int(np.nonzero(over.any(axis=1))[0][0])
                slot = int(np.nonzero(over[row])[0][0])
                instr = self.instructions[row]
                raise IsaError(
                    f"instruction #{row} ({type(instr).__name__}) overruns "
                    f"{space}: needs [{int(arena.r_offset[row, slot])}, "
                    f"{int(ends[row, slot])}) but {config.name} provides "
                    f"{capacity} bytes"
                )

    def _validate_objects(self, config: Optional[CoreConfig]) -> None:
        sets: Counter = Counter()
        waits: Counter = Counter()
        for instr in self.instructions:
            if isinstance(instr, SetFlag):
                sets[(instr.src_pipe, instr.dst_pipe, instr.event_id)] += 1
            elif isinstance(instr, WaitFlag):
                waits[(instr.src_pipe, instr.dst_pipe, instr.event_id)] += 1
        for channel in set(sets) | set(waits):
            if sets[channel] != waits[channel]:
                src, dst, event = channel
                raise IsaError(
                    f"unbalanced flags on {src}->{dst} event {event}: "
                    f"{sets[channel]} set vs {waits[channel]} wait"
                )
        if config is not None:
            for idx, instr in enumerate(self.instructions):
                for region in _regions_of(instr):
                    self._check_bounds(idx, instr, region, config)

    def _check_bounds(
        self, idx: int, instr: Instruction, region: Region, config: CoreConfig
    ) -> None:
        attr = _SPACE_CAPACITY_ATTR.get(region.space)
        if attr is None:  # GM is unbounded from the core's perspective
            return
        capacity = getattr(config, attr)
        if region.end > capacity:
            raise IsaError(
                f"instruction #{idx} ({type(instr).__name__}) overruns "
                f"{region.space}: needs [{region.offset}, {region.end}) "
                f"but {config.name} provides {capacity} bytes"
            )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return (self.name == other.name
                and self.instructions == other.instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Program(name={self.name!r}, {len(self)} instrs)"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        counts = ", ".join(
            f"{pipe}:{count}" for pipe, count in self.pipe_counts().items() if count
        )
        return f"Program({self.name!r}, {len(self)} instrs; {counts})"


def _regions_of(instr: Instruction) -> Tuple[Region, ...]:
    if isinstance(instr, CubeMatmul):
        return (instr.a, instr.b, instr.c)
    if isinstance(instr, VectorInstr):
        return (instr.dst, *instr.srcs)
    if isinstance(instr, (CopyInstr, Img2ColInstr, TransposeInstr, DecompressInstr)):
        return (instr.dst, instr.src)
    return ()
