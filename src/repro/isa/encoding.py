"""Binary instruction encoding and the Lite core's instruction compression.

Section 3.2: «The instruction compression technique is used in the
Ascend-Lite core to reduce the bandwidth pressure on the NoC.»

Two layers:

* :func:`encode_program` / :func:`decode_program` — a fixed-width binary
  encoding (one 24-byte word per instruction).  The paper does not
  disclose encodings; any fixed-width format exposes the same
  compressibility structure, which is what the experiment measures.
* :func:`compress_program` / :func:`decompress_program` — dictionary
  compression: compiled tile loops repeat a handful of distinct words
  thousands of times, so the most frequent words are replaced by 2-byte
  references into a dictionary shipped once.
"""

from __future__ import annotations

import struct
from collections import Counter
from typing import Dict, List, Tuple

from ..dtypes import dtype_by_name
from ..errors import IsaError
from .instructions import (
    OPCODE_OF,
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    PipeBarrier,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from .memref import MemSpace, Region
from .pipes import Pipe
from .program import Program

__all__ = [
    "WORD_BYTES",
    "encode_program",
    "decode_program",
    "compress_program",
    "decompress_program",
    "compression_ratio",
]

WORD_BYTES = 24

# The binary opcode IS the canonical instruction opcode (one shared
# table in isa/instructions.py, also used by the columnar arena).
_OPCODE_OF = OPCODE_OF
_SPACES = list(MemSpace)
_PIPES = list(Pipe)
_DTYPES = ["fp32", "fp16", "int32", "int8", "int4"]
_VOPS = list(VectorOpcode)


def _pack_region(region: Region) -> Tuple[int, int, int, int, int]:
    """(space, offset, dim0, dim1, dtype) — 2-D or flattened-1-D regions.

    The fixed-width word stores up to two dims; rank-3 sources (img2col)
    keep their true shape in the auxiliary field of their instruction.
    """
    if len(region.shape) == 1:
        d0, d1 = region.shape[0], 0
    elif len(region.shape) == 2:
        d0, d1 = region.shape
    else:
        raise IsaError("binary encoding supports rank-1/2 regions")
    return (_SPACES.index(region.space), region.offset, d0, d1,
            _DTYPES.index(region.dtype.name))


def _unpack_region(space_i: int, offset: int, d0: int, d1: int,
                   dtype_i: int, pitch: int = 0) -> Region:
    shape = (d0,) if d1 == 0 else (d0, d1)
    return Region(_SPACES[space_i], offset, shape,
                  dtype_by_name(_DTYPES[dtype_i]),
                  pitch=pitch or None)


def _encode_one(instr: Instruction) -> bytes:
    """One instruction -> one WORD_BYTES word.

    Layout: opcode(1) a(1) b(1) c(1) off0(4) off1(4) off2(4) d0(2) d1(2)
    d2(2) d3(2) — fields are overloaded per opcode.
    """
    op = _OPCODE_OF.get(type(instr))
    if op is None:
        raise IsaError(f"no binary encoding for {type(instr).__name__}")
    a = b = c = 0
    off = [0, 0, 0]
    d = [0, 0, 0, 0]
    if isinstance(instr, CubeMatmul):
        a = _DTYPES.index(instr.a.dtype.name)
        b = int(instr.accumulate)
        off = [instr.a.offset, instr.b.offset, instr.c.offset]
        d = [instr.m, instr.k, instr.n, 0]
    elif isinstance(instr, VectorInstr):
        a = _VOPS.index(instr.op)
        b = len(instr.srcs)
        regions = (instr.dst, *instr.srcs)
        c = _pack_vector_meta(regions)
        off = [r.offset for r in regions[:3]] + [0] * (3 - len(regions[:3]))
        d = [instr.dst.elems & 0xFFFF, instr.dst.elems >> 16,
             0 if instr.scalar is None else 1, 0]
    elif isinstance(instr, (CopyInstr, TransposeInstr, DecompressInstr)):
        src_p = _pack_region(_flatten(instr.src))
        dst_p = _pack_region(_flatten(instr.dst))
        a = src_p[0] | (dst_p[0] << 4)
        b = src_p[4]
        c = dst_p[4]
        off = [instr.src.offset, instr.dst.offset,
               (instr.src.pitch or 0)]
        d = [src_p[2] & 0xFFFF, src_p[3] & 0xFFFF, dst_p[2] & 0xFFFF,
             dst_p[3] & 0xFFFF]
    elif isinstance(instr, Img2ColInstr):
        a = _SPACES.index(instr.src.space)
        b = instr.kernel[0] << 4 | instr.kernel[1]
        c = instr.stride[0] << 4 | instr.stride[1]
        off = [instr.src.offset, instr.dst.offset,
               instr.padding[0] << 4 | instr.padding[1]]
        d = list(instr.src.shape) + [instr.dst.shape[0] & 0xFFFF]
    elif isinstance(instr, ScalarInstr):
        a = min(255, instr.cycles)
    elif isinstance(instr, (SetFlag, WaitFlag)):
        a = _PIPES.index(instr.src_pipe)
        b = _PIPES.index(instr.dst_pipe)
        c = instr.event_id
    elif isinstance(instr, PipeBarrier):
        a = _PIPES.index(instr.barrier_pipe)
    return struct.pack("<BBBBiiiHHHH", op, a, b & 0xFF, c & 0xFF,
                       *off, *[x & 0xFFFF for x in d])


def _flatten(region: Region) -> Region:
    if len(region.shape) <= 2:
        return region
    return Region(region.space, region.offset, (region.elems,), region.dtype)


def _pack_vector_meta(regions) -> int:
    """Pack (space, dtype) of dst and first src into one byte."""
    dst = regions[0]
    meta = _SPACES.index(dst.space) | (_DTYPES.index(dst.dtype.name) << 3)
    return meta


def encode_program(program: Program) -> bytes:
    """Encode a program to its fixed-width binary image."""
    return b"".join(_encode_one(instr) for instr in program)


def decode_program(blob: bytes) -> List[Tuple[int, tuple]]:
    """Decode a binary image into (opcode, fields) tuples.

    Full object reconstruction is only defined for control/flag words
    (the NoC experiment needs sizes and structure, not re-execution; CCE
    text is the round-trippable format).  The decoder is still exact:
    every word parses back to the fields the encoder packed.
    """
    if len(blob) % WORD_BYTES:
        raise IsaError("binary image is not word-aligned")
    out = []
    for i in range(0, len(blob), WORD_BYTES):
        word = struct.unpack("<BBBBiiiHHHH", blob[i:i + WORD_BYTES])
        out.append((word[0], word[1:]))
    return out


# -- dictionary compression ------------------------------------------------------

_MAGIC = b"ICMP"


def compress_program(program: Program, dict_size: int = 255) -> bytes:
    """Compress a program's binary image with a word dictionary.

    The ``dict_size`` most frequent instruction words are stored once in
    a header; the body is a token stream — 1-byte dictionary references
    for hot words, 0xFF-escaped literals for the rest.
    """
    if not 1 <= dict_size <= 255:
        raise IsaError("dict_size must be in [1, 255]")
    words = [_encode_one(instr) for instr in program]
    freq = Counter(words)
    # Only dictionary-worthy if a word repeats (saves WORD_BYTES-1 each).
    entries = [w for w, n in freq.most_common(dict_size) if n > 1]
    index: Dict[bytes, int] = {w: i for i, w in enumerate(entries)}
    body = bytearray()
    for word in words:
        code = index.get(word)
        if code is None:
            body.append(0xFF)
            body.extend(word)
        else:
            body.append(code)
    header = bytearray(_MAGIC)
    header.extend(struct.pack("<HI", len(entries), len(words)))
    for entry in entries:
        header.extend(entry)
    return bytes(header) + bytes(body)


def decompress_program(blob: bytes) -> bytes:
    """Invert :func:`compress_program`, returning the binary image."""
    if blob[:4] != _MAGIC:
        raise IsaError("not a compressed instruction stream")
    n_entries, n_words = struct.unpack("<HI", blob[4:10])
    pos = 10
    entries = []
    for _ in range(n_entries):
        entries.append(blob[pos:pos + WORD_BYTES])
        pos += WORD_BYTES
    out = bytearray()
    for _ in range(n_words):
        token = blob[pos]
        pos += 1
        if token == 0xFF:
            out.extend(blob[pos:pos + WORD_BYTES])
            pos += WORD_BYTES
        else:
            if token >= len(entries):
                raise IsaError(f"dictionary reference {token} out of range")
            out.extend(entries[token])
    return bytes(out)


def compression_ratio(program: Program) -> float:
    """Raw binary size / compressed size for a program."""
    raw = len(encode_program(program))
    packed = len(compress_program(program))
    return raw / packed if packed else 1.0
