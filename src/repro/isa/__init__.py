"""The Ascend instruction set used by this reproduction.

The paper does not disclose binary encodings; what matters for both the
functional and the performance model is the *execution contract* of
Section 2.2 / Figure 3: a scalar Program Sequence Queue dispatches typed
instructions to parallel per-pipe queues (cube, vector, memory-transfer),
and explicit ``set_flag``/``wait_flag`` barriers enforce cross-pipe data
dependencies.  This package defines that contract as typed Python objects.
"""

from .pipes import Pipe
from .memref import MemSpace, Region
from .instructions import (
    Instruction,
    CubeMatmul,
    VectorInstr,
    VectorOpcode,
    CopyInstr,
    Img2ColInstr,
    TransposeInstr,
    DecompressInstr,
    ScalarInstr,
    SetFlag,
    WaitFlag,
    PipeBarrier,
)
from .arena import InstructionArena
from .program import Program

__all__ = [
    "Pipe",
    "MemSpace",
    "Region",
    "InstructionArena",
    "Instruction",
    "CubeMatmul",
    "VectorInstr",
    "VectorOpcode",
    "CopyInstr",
    "Img2ColInstr",
    "TransposeInstr",
    "DecompressInstr",
    "ScalarInstr",
    "SetFlag",
    "WaitFlag",
    "PipeBarrier",
    "Program",
]
