"""Columnar instruction arena: a lowered program as parallel numpy columns.

PR 2 made traces columnar; this module pushes the same move down into the
compiler/ISA tier.  An :class:`InstructionArena` holds one lowered
program as parallel numpy columns — opcode kind, executing pipe, flag
channel (src pipe / dst pipe / event id), up to three operand regions
(space, offset, dims, pitch, dtype id), vector opcode / scalar immediate,
cube accumulate bit, interned tag ids — so that

* the cost model prices the whole program in a handful of vectorized
  expressions (:meth:`~repro.core.costs.CostModel.cost_columns`),
* static validation is masked column reductions
  (:meth:`~repro.isa.program.Program.validate`),
* the timing engine's prepass reads the columns directly instead of
  dispatching per instruction object, and
* the persistent cache serializes the columns with no object round-trip.

:class:`~repro.isa.instructions.Instruction` dataclasses survive as a
*lazy view* (mirroring ``TraceEvent`` over the trace arena):
:meth:`InstructionArena.materialize` rebuilds value-identical objects on
demand for consumers that want rows (functional replay, CCE text,
encoding, tests).

Region slots: slot 0 is the destination (``c`` for matmuls), slot 1 the
first source (``a``), slot 2 the second source (``b``).  ``r_d1 == 0``
marks a rank-1 region; ``r_pitch == 0`` means contiguous;
``r_space == -1`` marks an empty slot.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..dtypes import FP16, FP32, INT4, INT8, INT32
from ..errors import IsaError
from .instructions import (
    OP_BARRIER,
    OP_COPY,
    OP_CUBE,
    OP_DECOMP,
    OP_IMG2COL,
    OP_SCALAR,
    OP_SET,
    OP_TRANSPOSE,
    OP_VECTOR,
    OP_WAIT,
    OPCODE_OF,
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Instruction,
    PipeBarrier,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from .memref import MemSpace, Region
from .pipes import Pipe

__all__ = ["InstructionArena", "DTYPE_TABLE", "DTYPE_ID", "DTYPE_BITS",
           "MOVE_OPS", "FLAG_OPS"]

# Canonical dtype id table (same order as the binary encoding's).
DTYPE_TABLE = (FP32, FP16, INT32, INT8, INT4)
DTYPE_ID: Dict[str, int] = {dt.name: i for i, dt in enumerate(DTYPE_TABLE)}
DTYPE_BITS = np.array([dt.bits for dt in DTYPE_TABLE], np.int64)

MOVE_OPS = (OP_COPY, OP_IMG2COL, OP_TRANSPOSE, OP_DECOMP)
FLAG_OPS = (OP_SET, OP_WAIT, OP_BARRIER)

_VOPS: Tuple[VectorOpcode, ...] = tuple(VectorOpcode)
_VOP_ID: Dict[VectorOpcode, int] = {op: i for i, op in enumerate(_VOPS)}

# Kinds the arena can rebuild as objects without a retained object list
# (ScalarInstr carries an op string and Img2ColInstr a 3-D source plus
# kernel metadata that the columns do not encode).
_MATERIALIZABLE = frozenset(
    (OP_CUBE, OP_VECTOR, OP_COPY, OP_TRANSPOSE, OP_DECOMP, OP_SET,
     OP_WAIT, OP_BARRIER))

# Column name -> (dtype, region-slot rank).  Scalar columns have shape
# (n,); region columns have shape (n, 3).
_COLUMNS = (
    ("kind", np.int8, 1),
    ("pipe", np.int8, 1),
    ("tag_id", np.int32, 1),
    ("flag_src", np.int8, 1),
    ("flag_dst", np.int8, 1),
    ("event", np.int32, 1),
    ("vop", np.int16, 1),
    ("scalar", np.float64, 1),
    ("accumulate", np.int8, 1),
    ("misc", np.int64, 1),
    ("r_space", np.int8, 2),
    ("r_offset", np.int64, 2),
    ("r_d0", np.int64, 2),
    ("r_d1", np.int64, 2),
    ("r_pitch", np.int64, 2),
    ("r_dtype", np.int8, 2),
)
_COLUMN_NAMES = tuple(name for name, _, _ in _COLUMNS)


class InstructionArena:
    """One lowered program as parallel columns (see module docstring)."""

    __slots__ = (*_COLUMN_NAMES, "n", "tags", "exact", "repeats",
                 "_objects", "_nbytes", "_elems")

    def __init__(self, n: int, tags: Optional[List[str]] = None) -> None:
        self.n = n
        self.tags: List[str] = tags if tags is not None else [""]
        # ``exact`` means the columns alone fully describe every row; it
        # turns False when a row needs its retained object (scalar-op
        # strings, img2col metadata, >2 vector sources).
        self.exact = True
        # (start_row, block_rows, reps) segments recorded by concat for
        # sub-programs tiled more than once: rows [start, start + block *
        # reps) are reps verbatim copies of a block.  Pure metadata — the
        # timing engine uses it to prove steady-state shift invariance
        # and skip re-walking identical blocks; dropping it only costs
        # speed, never correctness.
        self.repeats: List[Tuple[int, int, int]] = []
        self._objects: Optional[List[Instruction]] = None
        self._nbytes: Optional[np.ndarray] = None
        self._elems: Optional[np.ndarray] = None
        for name, dtype, rank in _COLUMNS:
            shape = n if rank == 1 else (n, 3)
            if name in ("flag_src", "flag_dst", "event", "vop", "r_space"):
                setattr(self, name, np.full(shape, -1, dtype))
            elif name == "scalar":
                setattr(self, name, np.full(shape, np.nan, dtype))
            else:
                setattr(self, name, np.zeros(shape, dtype))

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InstructionArena({self.n} instrs, {len(self.tags) - 1} tags)"

    # -- derived columns ------------------------------------------------------

    def intern(self, tag: str) -> int:
        """Id for ``tag`` in this arena's tag table (interning it)."""
        try:
            return self.tags.index(tag)
        except ValueError:
            self.tags.append(tag)
            return len(self.tags) - 1

    @property
    def elems(self) -> np.ndarray:
        """(n, 3) element counts per region slot (0 for empty slots)."""
        if self._elems is None:
            d1 = np.where(self.r_d1 > 0, self.r_d1, 1)
            self._elems = np.where(self.r_space >= 0, self.r_d0 * d1, 0)
        return self._elems

    @property
    def nbytes(self) -> np.ndarray:
        """(n, 3) payload bytes per region slot (``Region.nbytes``)."""
        if self._nbytes is None:
            bits = DTYPE_BITS[self.r_dtype]
            self._nbytes = (self.elems * bits + 7) // 8
        return self._nbytes

    def region_ends(self) -> np.ndarray:
        """(n, 3) ``Region.end`` per slot: offset + footprint.

        Footprint includes pitch gaps: ``(d0 - 1) * pitch + row_bytes``
        for pitched rank-2 regions, payload bytes otherwise.
        """
        bits = DTYPE_BITS[self.r_dtype]
        row_bytes = (self.r_d1 * bits + 7) // 8
        pitched = (self.r_d0 - 1) * self.r_pitch + row_bytes
        footprint = np.where(self.r_pitch > 0, pitched, self.nbytes)
        return self.r_offset + footprint

    def packed_channels(self) -> np.ndarray:
        """Per-row packed flag channel ints (see ``isa.channels``); -1 for
        rows that are not set/wait flags."""
        from .channels import N_PIPES
        packed = ((self.event.astype(np.int64) * N_PIPES + self.flag_src)
                  * N_PIPES + self.flag_dst)
        is_flag = (self.kind == OP_SET) | (self.kind == OP_WAIT)
        return np.where(is_flag, packed, -1)

    # -- construction from objects (oracle paths, exotic programs) ------------

    @classmethod
    def from_instructions(cls, instrs: Sequence[Instruction]
                          ) -> "InstructionArena":
        """Columns for an existing instruction list.

        The list is retained as the materialized view, so this works for
        every instruction class — including the ones whose columns alone
        could not rebuild them (scalar ops, img2col).
        """
        instrs = list(instrs)
        arena = cls(len(instrs))
        arena._objects = instrs
        memo: Dict[int, tuple] = {}
        rows: List[tuple] = []
        for instr in instrs:
            key = id(instr)
            rec = memo.get(key)
            if rec is None:
                rec = arena._row_of(instr)
                memo[key] = rec
            rows.append(rec)
        if rows:
            for col, name in enumerate(_COLUMN_NAMES):
                column = getattr(arena, name)
                values = [row[col] for row in rows]
                column[...] = np.asarray(
                    values, column.dtype).reshape(column.shape)
        return arena

    def _row_of(self, instr: Instruction) -> tuple:
        """One instruction -> a tuple in ``_COLUMNS`` order."""
        kind = OPCODE_OF.get(type(instr))
        if kind is None:
            raise IsaError(f"no arena row for {type(instr).__name__}")
        tag_id = self.intern(instr.tag)
        flag_src = flag_dst = -1
        event = -1
        vop = -1
        scalar = np.nan
        accumulate = 0
        misc = 0
        regions: Tuple[Optional[Region], ...] = (None, None, None)
        if kind == OP_CUBE:
            regions = (instr.c, instr.a, instr.b)
            accumulate = int(instr.accumulate)
        elif kind == OP_VECTOR:
            vop = _VOP_ID[instr.op]
            srcs = instr.srcs[:2]
            regions = (instr.dst, *srcs, *(None,) * (2 - len(srcs)))
            if len(instr.srcs) > 2:  # e.g. SELECT_GE — objects authoritative
                self.exact = False
            if instr.scalar is not None:
                scalar = float(instr.scalar)
        elif kind in MOVE_OPS:
            regions = (instr.dst, instr.src, None)
        elif kind in (OP_SET, OP_WAIT):
            flag_src = int(instr.src_pipe)
            flag_dst = int(instr.dst_pipe)
            event = instr.event_id
        elif kind == OP_SCALAR:
            misc = instr.cycles
            self.exact = False  # op string lives only on the object
        elif kind == OP_IMG2COL:
            self.exact = False  # kernel/stride/padding live on the object
        # OP_BARRIER carries only its pipe.
        r_space = [-1, -1, -1]
        r_offset = [0, 0, 0]
        r_d0 = [0, 0, 0]
        r_d1 = [0, 0, 0]
        r_pitch = [0, 0, 0]
        r_dtype = [0, 0, 0]
        for slot, region in enumerate(regions):
            if region is None:
                continue
            r_space[slot] = int(region.space)
            r_offset[slot] = region.offset
            shape = region.shape
            if len(shape) == 1:
                r_d0[slot] = shape[0]
            elif len(shape) == 2:
                r_d0[slot], r_d1[slot] = shape
            else:  # rank-3 (img2col): flatten; objects stay authoritative
                r_d0[slot] = region.elems
            r_pitch[slot] = region.pitch or 0
            r_dtype[slot] = DTYPE_ID[region.dtype.name]
        return (kind, int(instr.pipe), tag_id, flag_src, flag_dst, event,
                vop, scalar, accumulate, misc, r_space, r_offset, r_d0,
                r_d1, r_pitch, r_dtype)

    # -- lazy object view -----------------------------------------------------

    def materialize(self) -> List[Instruction]:
        """Value-identical instruction objects for every row.

        Flags are interned (repeated emissions share one object), which
        restores the per-object memoization downstream consumers rely on.
        """
        if self._objects is not None:
            return self._objects
        missing = set(self._kind_set()) - _MATERIALIZABLE
        if missing or not self.exact:
            raise IsaError(
                "arena rows cannot be materialized without the original "
                f"objects (opcodes {sorted(missing)}, exact={self.exact})")
        flag_cache: Dict[tuple, Instruction] = {}
        out: List[Instruction] = []
        tags = self.tags
        kind = self.kind.tolist()
        tag_id = self.tag_id.tolist()
        flag_src = self.flag_src.tolist()
        flag_dst = self.flag_dst.tolist()
        event = self.event.tolist()
        vop = self.vop.tolist()
        scalar = self.scalar.tolist()
        accumulate = self.accumulate.tolist()
        pipe = self.pipe.tolist()
        r_space = self.r_space.tolist()
        r_offset = self.r_offset.tolist()
        r_d0 = self.r_d0.tolist()
        r_d1 = self.r_d1.tolist()
        r_pitch = self.r_pitch.tolist()
        r_dtype = self.r_dtype.tolist()

        def region(i: int, slot: int) -> Optional[Region]:
            space = r_space[i][slot]
            if space < 0:
                return None
            d0, d1 = r_d0[i][slot], r_d1[i][slot]
            return Region(MemSpace(space), r_offset[i][slot],
                          (d0,) if d1 == 0 else (d0, d1),
                          DTYPE_TABLE[r_dtype[i][slot]],
                          pitch=r_pitch[i][slot] or None)

        for i in range(self.n):
            op = kind[i]
            tag = tags[tag_id[i]]
            if op == OP_SET or op == OP_WAIT:
                key = (op, flag_src[i], flag_dst[i], event[i], tag)
                instr = flag_cache.get(key)
                if instr is None:
                    cls = SetFlag if op == OP_SET else WaitFlag
                    instr = cls(src_pipe=Pipe(flag_src[i]),
                                dst_pipe=Pipe(flag_dst[i]),
                                event_id=event[i], tag=tag)
                    flag_cache[key] = instr
            elif op == OP_COPY:
                instr = CopyInstr(dst=region(i, 0), src=region(i, 1), tag=tag)
            elif op == OP_CUBE:
                instr = CubeMatmul(a=region(i, 1), b=region(i, 2),
                                   c=region(i, 0),
                                   accumulate=bool(accumulate[i]), tag=tag)
            elif op == OP_VECTOR:
                srcs = tuple(r for r in (region(i, 1), region(i, 2))
                             if r is not None)
                s = scalar[i]
                instr = VectorInstr(op=_VOPS[vop[i]], dst=region(i, 0),
                                    srcs=srcs,
                                    scalar=None if s != s else s, tag=tag)
            elif op == OP_TRANSPOSE:
                instr = TransposeInstr(dst=region(i, 0), src=region(i, 1),
                                       tag=tag)
            elif op == OP_DECOMP:
                instr = DecompressInstr(dst=region(i, 0), src=region(i, 1),
                                        tag=tag)
            else:  # OP_BARRIER
                instr = PipeBarrier(barrier_pipe=Pipe(pipe[i]), tag=tag)
            out.append(instr)
        self._objects = out
        return out

    def instruction_at(self, i: int) -> Instruction:
        return self.materialize()[i]

    # -- structural ops -------------------------------------------------------

    def retagged(self, tag: str) -> "InstructionArena":
        """A copy of this arena with every row's tag replaced by ``tag``.

        Column arrays are *shared* with the original (they are never
        mutated after lowering), so retagging a memoized sub-program is
        O(n) in the tag-id column only.  The materialized-object cache is
        dropped — objects embed tag strings.  Returns ``self`` unchanged
        when the arena already carries exactly ``tag`` on every row.
        """
        tags = ["", tag] if tag else [""]
        if self.tags == tags:
            return self
        out = InstructionArena.__new__(InstructionArena)
        for name in _COLUMN_NAMES:
            setattr(out, name, getattr(self, name))
        out.n = self.n
        out.tags = tags
        out.exact = self.exact
        out.repeats = list(self.repeats)
        out._objects = None
        out._nbytes = self._nbytes
        out._elems = self._elems
        out.tag_id = (np.ones(self.n, np.int32) if tag
                      else np.zeros(self.n, np.int32))
        return out

    @classmethod
    def concat(cls, arenas: Sequence["InstructionArena"],
               repeats: Optional[Sequence[int]] = None) -> "InstructionArena":
        """Concatenate arenas (each optionally tiled ``repeats[i]`` times).

        Tag tables are merged and tag-id columns remapped.
        """
        arenas = list(arenas)
        repeats = list(repeats) if repeats is not None else [1] * len(arenas)
        out = cls(0)
        out.exact = all(a.exact for a in arenas)
        pieces: Dict[str, List[np.ndarray]] = {n: [] for n in _COLUMN_NAMES}
        objects: Optional[List[Instruction]] = None if out.exact else []
        total = 0
        for arena, reps in zip(arenas, repeats):
            if reps <= 0 or arena.n == 0:
                continue
            if reps > 1:
                out.repeats.append((total, arena.n, reps))
            else:
                out.repeats.extend((total + start, block, r)
                                   for start, block, r in arena.repeats)
            if objects is not None:  # inexact rows need their objects
                objects.extend(arena.materialize() * reps)
            remap = np.array([out.intern(t) for t in arena.tags], np.int32)
            for name in _COLUMN_NAMES:
                column = getattr(arena, name)
                if name == "tag_id":
                    column = remap[column]
                if reps > 1:
                    tile = (reps,) if column.ndim == 1 else (reps, 1)
                    column = np.tile(column, tile)
                pieces[name].append(column)
            total += arena.n * reps
        out.n = total
        out._objects = objects
        for name, dtype, rank in _COLUMNS:
            if pieces[name]:
                setattr(out, name, np.concatenate(pieces[name]))
            else:
                shape = 0 if rank == 1 else (0, 3)
                setattr(out, name, np.zeros(shape, dtype))
        return out

    # -- serialization (cache artifacts) --------------------------------------

    def columns(self) -> Dict[str, np.ndarray]:
        """The raw columns, for arena-native serialization.

        Raises when the arena holds rows only the retained objects could
        rebuild — those programs must not round-trip through columns.
        """
        missing = set(self._kind_set()) - _MATERIALIZABLE
        if missing or not self.exact:
            raise IsaError(
                f"opcode(s) {sorted(missing)} are not column-serializable "
                f"(exact={self.exact})")
        return {name: getattr(self, name) for name in _COLUMN_NAMES}

    def _kind_set(self) -> List[int]:
        return [int(k) for k in np.unique(self.kind)]

    @classmethod
    def from_columns(cls, columns: Dict[str, np.ndarray], tags: List[str]
                     ) -> "InstructionArena":
        """Rebuild an arena from :meth:`columns` output (cache load path —
        no instruction objects are created)."""
        n = int(len(columns["kind"]))
        arena = cls(n, tags=list(tags))
        for name, dtype, rank in _COLUMNS:
            column = np.asarray(columns[name], dtype)
            expected = (n,) if rank == 1 else (n, 3)
            if column.shape != expected:
                raise IsaError(f"arena column {name} has shape "
                               f"{column.shape}, expected {expected}")
            setattr(arena, name, column)
        return arena
