"""Memory spaces and typed regions referenced by instructions.

Every instruction operand is a :class:`Region`: a (space, byte offset,
shape, dtype) tuple.  Layout inside a region is row-major; the shipped
hardware uses fractal NZ layouts, but since both the functional model and
the cost model only depend on byte counts and tile shapes, row-major
preserves the observable behaviour (see DESIGN.md substitutions).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

from ..dtypes import DType
from ..errors import IsaError

__all__ = ["MemSpace", "Region"]


class MemSpace(enum.IntEnum):
    """On-core scratchpads plus the external (global) memory.

    An ``IntEnum`` for the same reason as :class:`~repro.isa.pipes.Pipe`:
    the cost model keys route tables by space in its hot path, and int
    hashing is essentially free.
    """

    L0A = 0  # cube input feature tiles
    L0B = 1  # cube weight tiles
    L0C = 2  # cube accumulator tiles
    L1 = 3  # core-local staging buffer
    UB = 4  # unified buffer (vector/scalar shared)
    GM = 5  # global memory (LLC/HBM behind the BIU)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Region:
    """A typed view into one memory space.

    By default a region is contiguous.  Rank-2 regions may carry a
    ``pitch`` — the byte distance between consecutive rows — which is how
    tiled kernels address sub-matrices of a larger row-major matrix in GM
    or L1 (the MTE supports strided descriptors on real hardware).
    """

    space: MemSpace
    offset: int
    shape: Tuple[int, ...]
    dtype: DType
    pitch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise IsaError(f"negative region offset {self.offset}")
        if not self.shape:
            raise IsaError("region shape must have at least one dimension")
        for dim in self.shape:
            if dim <= 0:
                raise IsaError(f"non-positive region dimension in {self.shape}")
        if self.pitch is not None:
            if len(self.shape) != 2:
                raise IsaError("pitch is only supported on rank-2 regions")
            if self.dtype.bits % 8:
                raise IsaError("pitched regions require byte-aligned dtypes")
            if self.pitch < self.row_bytes:
                raise IsaError(
                    f"pitch {self.pitch} smaller than row size {self.row_bytes}"
                )

    # elems/nbytes are cached: the cost model and traffic accounting read
    # them several times per instruction (caching is safe — the dataclass
    # is frozen, and the cache lives in __dict__, outside field-based
    # equality/hash).
    @cached_property
    def elems(self) -> int:
        return math.prod(self.shape)

    @property
    def row_bytes(self) -> int:
        """Bytes in one row of a rank-2 region."""
        return math.ceil(self.shape[-1] * self.dtype.bits / 8)

    @cached_property
    def nbytes(self) -> int:
        """Bytes of payload (what moves over a bus); excludes pitch gaps."""
        return math.ceil(self.elems * self.dtype.bits / 8)

    @property
    def footprint(self) -> int:
        """Bytes of address space spanned, including pitch gaps."""
        if self.pitch is None:
            return self.nbytes
        return (self.shape[0] - 1) * self.pitch + self.row_bytes

    @property
    def end(self) -> int:
        return self.offset + self.footprint

    def overlaps(self, other: "Region") -> bool:
        """True when two regions share bytes in the same space."""
        if self.space is not other.space:
            return False
        return self.offset < other.end and other.offset < self.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape)
        return f"{self.space}[{self.offset}:{self.end}]({dims} {self.dtype})"
