"""Typed instruction objects dispatched to the core's pipes.

Each instruction knows which :class:`~repro.isa.pipes.Pipe` executes it and
validates its operand regions at construction time, so malformed programs
fail at build time rather than mid-simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..dtypes import DType, accumulator_for
from ..errors import IsaError
from .memref import MemSpace, Region
from .pipes import Pipe

__all__ = [
    "Instruction",
    "CubeMatmul",
    "VectorOpcode",
    "VectorInstr",
    "CopyInstr",
    "Img2ColInstr",
    "TransposeInstr",
    "DecompressInstr",
    "ScalarInstr",
    "SetFlag",
    "WaitFlag",
    "PipeBarrier",
    "COPY_ROUTES",
    "OP_CUBE",
    "OP_VECTOR",
    "OP_COPY",
    "OP_IMG2COL",
    "OP_TRANSPOSE",
    "OP_DECOMP",
    "OP_SCALAR",
    "OP_SET",
    "OP_WAIT",
    "OP_BARRIER",
    "OPCODE_OF",
]


@dataclass(frozen=True)
class Instruction:
    """Base class; ``tag`` attributes instructions to a layer/op for traces."""

    tag: str = field(default="", kw_only=True)

    @property
    def pipe(self) -> Pipe:
        raise NotImplementedError


@dataclass(frozen=True)
class CubeMatmul(Instruction):
    """C[m, n] (+)= A[m, k] @ B[k, n] on the cube unit.

    ``a``/``b`` live in L0A/L0B with the cube's source dtype; ``c`` lives in
    L0C with the accumulator dtype (fp32 for fp16 sources, int32 for int8 /
    int4, Section 2.1).  The m/k/n here are the *L0-resident* tile sizes;
    the hardware iterates its native cube shape over them, which is what
    the cost model charges.
    """

    a: Region = None  # type: ignore[assignment]
    b: Region = None  # type: ignore[assignment]
    c: Region = None  # type: ignore[assignment]
    accumulate: bool = False

    def __post_init__(self) -> None:
        if self.a is None or self.b is None or self.c is None:
            raise IsaError("CubeMatmul requires a, b and c regions")
        if self.a.space is not MemSpace.L0A:
            raise IsaError(f"CubeMatmul A must be in L0A, got {self.a.space}")
        if self.b.space is not MemSpace.L0B:
            raise IsaError(f"CubeMatmul B must be in L0B, got {self.b.space}")
        if self.c.space is not MemSpace.L0C:
            raise IsaError(f"CubeMatmul C must be in L0C, got {self.c.space}")
        if len(self.a.shape) != 2 or len(self.b.shape) != 2 or len(self.c.shape) != 2:
            raise IsaError("CubeMatmul operands must be 2-D")
        m, k = self.a.shape
        k2, n = self.b.shape
        m2, n2 = self.c.shape
        if k != k2 or m != m2 or n != n2:
            raise IsaError(
                f"CubeMatmul shape mismatch: A{self.a.shape} B{self.b.shape} C{self.c.shape}"
            )
        if self.a.dtype is not self.b.dtype:
            raise IsaError(
                f"CubeMatmul A/B dtype mismatch: {self.a.dtype} vs {self.b.dtype}"
            )
        expected = accumulator_for(self.a.dtype)
        if self.c.dtype is not expected:
            raise IsaError(
                f"CubeMatmul C dtype must be {expected} for {self.a.dtype} sources,"
                f" got {self.c.dtype}"
            )

    @property
    def pipe(self) -> Pipe:
        return Pipe.M

    @property
    def m(self) -> int:
        return self.a.shape[0]

    @property
    def k(self) -> int:
        return self.a.shape[1]

    @property
    def n(self) -> int:
        return self.b.shape[1]

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n


class VectorOpcode(enum.Enum):
    """Vector-unit operations (Table 2 plus precision conversion, §2.2)."""

    COPY = "copy"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MAX = "max"
    MIN = "min"
    ADDS = "adds"  # add scalar
    MULS = "muls"  # multiply by scalar
    RELU = "relu"
    ABS = "abs"
    NEG = "neg"
    EXP = "exp"
    LOG = "log"
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    RECIP = "recip"
    TANH = "tanh"
    SIGMOID = "sigmoid"
    GELU = "gelu"
    CAST = "cast"
    QUANTIZE = "quantize"
    DEQUANTIZE = "dequantize"
    REDUCE_SUM = "reduce_sum"
    REDUCE_MAX = "reduce_max"
    SELECT_GE = "select_ge"  # dst = src0 >= 0 ? src1 : src2 (backward masks)
    # CV / SLAM extensions of the automotive Vector Core (Section 3.3).
    SORT = "sort"
    QUATERNION_MUL = "quaternion_mul"
    CLUSTER_ASSIGN = "cluster_assign"

    @property
    def arity(self) -> int:
        """Number of source regions the op reads."""
        return _VECTOR_OP_META[self][0]

    @property
    def passes(self) -> int:
        """Datapath passes relative to a simple elementwise op —
        transcendentals are iterative on real hardware."""
        return _VECTOR_OP_META[self][1]

    @property
    def is_reduction(self) -> bool:
        return self in (VectorOpcode.REDUCE_SUM, VectorOpcode.REDUCE_MAX)


# op -> (arity, passes)
_VECTOR_OP_META: Dict["VectorOpcode", Tuple[int, int]] = {
    VectorOpcode.COPY: (1, 1),
    VectorOpcode.ADD: (2, 1),
    VectorOpcode.SUB: (2, 1),
    VectorOpcode.MUL: (2, 1),
    VectorOpcode.DIV: (2, 4),
    VectorOpcode.MAX: (2, 1),
    VectorOpcode.MIN: (2, 1),
    VectorOpcode.ADDS: (1, 1),
    VectorOpcode.MULS: (1, 1),
    VectorOpcode.RELU: (1, 1),
    VectorOpcode.ABS: (1, 1),
    VectorOpcode.NEG: (1, 1),
    VectorOpcode.EXP: (1, 4),
    VectorOpcode.LOG: (1, 4),
    VectorOpcode.SQRT: (1, 4),
    VectorOpcode.RSQRT: (1, 4),
    VectorOpcode.RECIP: (1, 4),
    VectorOpcode.TANH: (1, 6),
    VectorOpcode.SIGMOID: (1, 6),
    VectorOpcode.GELU: (1, 8),
    VectorOpcode.CAST: (1, 1),
    VectorOpcode.QUANTIZE: (1, 2),
    VectorOpcode.DEQUANTIZE: (1, 2),
    VectorOpcode.REDUCE_SUM: (1, 1),
    VectorOpcode.REDUCE_MAX: (1, 1),
    VectorOpcode.SELECT_GE: (3, 1),
    VectorOpcode.SORT: (1, 12),
    VectorOpcode.QUATERNION_MUL: (2, 4),
    VectorOpcode.CLUSTER_ASSIGN: (2, 8),
}


_VECTOR_READABLE = (MemSpace.UB, MemSpace.L0C)
_VECTOR_WRITABLE = (MemSpace.UB, MemSpace.L0C)


@dataclass(frozen=True)
class VectorInstr(Instruction):
    """An elementwise / reduction op on the vector unit.

    Sources may live in UB or L0C (the vector unit post-processes cube
    results directly, Section 2.2); the destination is UB, or L0C for the
    duplex path used in training.
    """

    op: VectorOpcode = None  # type: ignore[assignment]
    dst: Region = None  # type: ignore[assignment]
    srcs: Tuple[Region, ...] = ()
    scalar: Optional[float] = None  # ADDS/MULS immediate, quant scale, ...
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op is None or self.dst is None:
            raise IsaError("VectorInstr requires an opcode and a destination")
        if len(self.srcs) != self.op.arity:
            raise IsaError(
                f"{self.op.name} expects {self.op.arity} sources, got {len(self.srcs)}"
            )
        if self.dst.space not in _VECTOR_WRITABLE:
            raise IsaError(f"vector dst must be UB/L0C, got {self.dst.space}")
        for src in self.srcs:
            if src.space not in _VECTOR_READABLE:
                raise IsaError(f"vector src must be UB/L0C, got {src.space}")
        if self.op in (VectorOpcode.ADDS, VectorOpcode.MULS) and self.scalar is None:
            raise IsaError(f"{self.op.name} requires a scalar immediate")
        if self.op in (VectorOpcode.QUANTIZE, VectorOpcode.DEQUANTIZE) and (
            self.scalar is None or self.scalar <= 0
        ):
            raise IsaError(f"{self.op.name} requires a positive scale")

    @property
    def pipe(self) -> Pipe:
        return Pipe.V

    @property
    def elems(self) -> int:
        """Elements processed — source elements (reductions shrink dst)."""
        return self.srcs[0].elems if self.srcs else self.dst.elems


# Which pipe moves data between a pair of spaces (Section 2.2 datapath).
COPY_ROUTES: Dict[Tuple[MemSpace, MemSpace], Pipe] = {
    (MemSpace.GM, MemSpace.L1): Pipe.MTE2,
    (MemSpace.GM, MemSpace.UB): Pipe.MTE2,
    (MemSpace.L1, MemSpace.L0A): Pipe.MTE1,
    (MemSpace.L1, MemSpace.L0B): Pipe.MTE1,
    (MemSpace.L1, MemSpace.UB): Pipe.MTE1,
    (MemSpace.L0C, MemSpace.UB): Pipe.V,
    (MemSpace.UB, MemSpace.L0C): Pipe.V,
    (MemSpace.UB, MemSpace.GM): Pipe.MTE3,
    (MemSpace.UB, MemSpace.L1): Pipe.MTE3,
    (MemSpace.L1, MemSpace.GM): Pipe.MTE3,
}


@dataclass(frozen=True)
class CopyInstr(Instruction):
    """A plain data move; the route determines the executing pipe."""

    dst: Region = None  # type: ignore[assignment]
    src: Region = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.dst is None or self.src is None:
            raise IsaError("CopyInstr requires dst and src regions")
        route = (self.src.space, self.dst.space)
        if route not in COPY_ROUTES:
            raise IsaError(f"no datapath route {route[0]} -> {route[1]}")
        if self.dst.nbytes < self.src.nbytes:
            raise IsaError(
                f"copy destination smaller than source: {self.dst} < {self.src}"
            )

    @property
    def pipe(self) -> Pipe:
        return COPY_ROUTES[(self.src.space, self.dst.space)]

    @property
    def nbytes(self) -> int:
        return self.src.nbytes


@dataclass(frozen=True)
class Img2ColInstr(Instruction):
    """MTE img2col: expand an image window in L1 into a GEMM A-tile in L0A.

    ``src`` is an (H, W, C) image region in L1; ``dst`` is the (m, k)
    matrix with m = out_h * out_w and k = kh * kw * C (Section 2.2's
    *img2col* module).
    """

    dst: Region = None  # type: ignore[assignment]
    src: Region = None  # type: ignore[assignment]
    kernel: Tuple[int, int] = (1, 1)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)

    def __post_init__(self) -> None:
        if self.dst is None or self.src is None:
            raise IsaError("Img2ColInstr requires dst and src regions")
        if self.src.space is not MemSpace.L1 or self.dst.space is not MemSpace.L0A:
            raise IsaError("img2col route is L1 -> L0A")
        if len(self.src.shape) != 3 or len(self.dst.shape) != 2:
            raise IsaError("img2col expects a 3-D source and 2-D destination")
        kh, kw = self.kernel
        sh, sw = self.stride
        if kh <= 0 or kw <= 0 or sh <= 0 or sw <= 0:
            raise IsaError("kernel and stride dims must be positive")
        h, w, c = self.src.shape
        oh, ow = self.out_spatial
        if oh <= 0 or ow <= 0:
            raise IsaError(f"img2col produces empty output for input {self.src.shape}")
        if self.dst.shape != (oh * ow, kh * kw * c):
            raise IsaError(
                f"img2col dst shape {self.dst.shape} != ({oh * ow}, {kh * kw * c})"
            )

    @property
    def out_spatial(self) -> Tuple[int, int]:
        h, w, _ = self.src.shape
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        return ((h + 2 * ph - kh) // sh + 1, (w + 2 * pw - kw) // sw + 1)

    @property
    def pipe(self) -> Pipe:
        return Pipe.MTE1

    @property
    def nbytes(self) -> int:
        """Bytes *written* to L0A — the expanded footprint bounds the bus."""
        return self.dst.nbytes


@dataclass(frozen=True)
class TransposeInstr(Instruction):
    """MTE *trans* module: move an L1 matrix into L0A/L0B transposed."""

    dst: Region = None  # type: ignore[assignment]
    src: Region = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.dst is None or self.src is None:
            raise IsaError("TransposeInstr requires dst and src regions")
        if self.src.space is not MemSpace.L1:
            raise IsaError("transpose source must be L1")
        if self.dst.space not in (MemSpace.L0A, MemSpace.L0B):
            raise IsaError("transpose destination must be L0A or L0B")
        if len(self.src.shape) != 2 or len(self.dst.shape) != 2:
            raise IsaError("transpose operands must be 2-D")
        if self.dst.shape != (self.src.shape[1], self.src.shape[0]):
            raise IsaError(
                f"transpose dst shape {self.dst.shape} != reversed src {self.src.shape}"
            )
        if self.dst.dtype is not self.src.dtype:
            raise IsaError("transpose cannot change dtype")

    @property
    def pipe(self) -> Pipe:
        return Pipe.MTE1

    @property
    def nbytes(self) -> int:
        return self.src.nbytes


@dataclass(frozen=True)
class DecompressInstr(Instruction):
    """MTE *decomp* module: zero-value-decompress L1 data into L0B.

    ``src`` is the compressed byte stream (shape = (compressed_bytes,),
    uint8-like int8 region); ``dst`` is the dense tile it expands to.
    """

    dst: Region = None  # type: ignore[assignment]
    src: Region = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.dst is None or self.src is None:
            raise IsaError("DecompressInstr requires dst and src regions")
        if self.src.space is not MemSpace.L1:
            raise IsaError("decompress source must be L1")
        if self.dst.space not in (MemSpace.L0A, MemSpace.L0B):
            raise IsaError("decompress destination must be L0A or L0B")

    @property
    def pipe(self) -> Pipe:
        return Pipe.MTE1

    @property
    def nbytes(self) -> int:
        """Bus cost is dominated by the *compressed* bytes read from L1."""
        return self.src.nbytes


@dataclass(frozen=True)
class ScalarInstr(Instruction):
    """Scalar-unit work: control flow, address generation, bookkeeping."""

    op: str = "nop"
    cycles: int = 1

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise IsaError("scalar instruction cost must be positive")

    @property
    def pipe(self) -> Pipe:
        return Pipe.S


@dataclass(frozen=True)
class SetFlag(Instruction):
    """Signal event ``event_id`` from ``src_pipe`` to ``dst_pipe``.

    Executes on ``src_pipe`` after all earlier work on that pipe finishes
    (pipes are in-order), making the producer's results visible.
    """

    src_pipe: Pipe = None  # type: ignore[assignment]
    dst_pipe: Pipe = None  # type: ignore[assignment]
    event_id: int = 0

    def __post_init__(self) -> None:
        _validate_flag(self.src_pipe, self.dst_pipe, self.event_id)

    @property
    def pipe(self) -> Pipe:
        return self.src_pipe


@dataclass(frozen=True)
class WaitFlag(Instruction):
    """Block ``dst_pipe`` until the matching :class:`SetFlag` fires."""

    src_pipe: Pipe = None  # type: ignore[assignment]
    dst_pipe: Pipe = None  # type: ignore[assignment]
    event_id: int = 0

    def __post_init__(self) -> None:
        _validate_flag(self.src_pipe, self.dst_pipe, self.event_id)

    @property
    def pipe(self) -> Pipe:
        return self.dst_pipe


def _validate_flag(src_pipe: Pipe, dst_pipe: Pipe, event_id: int) -> None:
    if src_pipe is None or dst_pipe is None:
        raise IsaError("flag instructions require src_pipe and dst_pipe")
    if src_pipe is dst_pipe:
        raise IsaError("flags synchronize *across* pipes; use PipeBarrier within one")
    if event_id < 0:
        raise IsaError("event_id must be non-negative")


@dataclass(frozen=True)
class PipeBarrier(Instruction):
    """Order point within a single pipe (a no-op for this in-order model,
    kept so compiled programs read like real CCE kernels)."""

    barrier_pipe: Pipe = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.barrier_pipe is None:
            raise IsaError("PipeBarrier requires a pipe")

    @property
    def pipe(self) -> Pipe:
        return self.barrier_pipe


# Canonical numeric opcodes — one id per instruction class.  The binary
# encoding (isa/encoding.py), the columnar instruction arena
# (isa/arena.py) and the cost model's columnar dispatch all key off this
# table, so the ids agree across every columnar tier.
OP_CUBE = 1
OP_VECTOR = 2
OP_COPY = 3
OP_IMG2COL = 4
OP_TRANSPOSE = 5
OP_DECOMP = 6
OP_SCALAR = 7
OP_SET = 8
OP_WAIT = 9
OP_BARRIER = 10

OPCODE_OF: Dict[type, int] = {
    CubeMatmul: OP_CUBE,
    VectorInstr: OP_VECTOR,
    CopyInstr: OP_COPY,
    Img2ColInstr: OP_IMG2COL,
    TransposeInstr: OP_TRANSPOSE,
    DecompressInstr: OP_DECOMP,
    ScalarInstr: OP_SCALAR,
    SetFlag: OP_SET,
    WaitFlag: OP_WAIT,
    PipeBarrier: OP_BARRIER,
}
