"""Exception hierarchy for the Ascend reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch simulator problems without masking genuine Python bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An architecture configuration is inconsistent or unsupported."""


class IsaError(ReproError):
    """An instruction is malformed or used on the wrong pipe."""


class MemoryError_(ReproError):
    """A scratchpad allocation or access is out of bounds.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class AllocationError(MemoryError_):
    """A buffer allocator ran out of space or was misused."""


class SimulationError(ReproError):
    """The event engine reached an inconsistent state (e.g. deadlock)."""


class DeadlockError(SimulationError):
    """Cross-pipe synchronization can never be satisfied."""


class GraphError(ReproError):
    """A graph IR construction or shape-inference problem."""


class CompileError(ReproError):
    """The compiler could not lower a graph or find a legal tiling."""


class SchedulingError(ReproError):
    """Stream/task/block scheduling failed (SoC or cluster level)."""
