"""Exception hierarchy for the Ascend reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch simulator problems without masking genuine Python bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An architecture configuration is inconsistent or unsupported."""


class IsaError(ReproError):
    """An instruction is malformed or used on the wrong pipe."""


class MemoryError_(ReproError):
    """A scratchpad allocation or access is out of bounds.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class AllocationError(MemoryError_):
    """A buffer allocator ran out of space or was misused."""


class EccError(MemoryError_):
    """A scratchpad read hit an uncorrectable (multi-bit) memory error.

    SECDED corrects single-bit flips transparently; double-bit flips are
    detected and surface here with the guilty scratchpad named, so the
    runtime can retry or fail the kernel instead of computing on garbage.
    """

    def __init__(self, message: str, pad: str = "", bits: int = 0) -> None:
        super().__init__(message)
        self.pad = pad
        self.bits = bits


class SimulationError(ReproError):
    """The event engine reached an inconsistent state (e.g. deadlock)."""


class DeadlockError(SimulationError):
    """Cross-pipe synchronization can never be satisfied.

    ``report`` carries the structured
    :class:`~repro.reliability.deadlock.DeadlockReport` (wait-for graph
    over flag channels, the cycle or never-set channel, and the
    emitting/consuming instruction indices) when the raising scheduler
    built one.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class SweepError(ReproError):
    """A supervised sweep could not complete every job.

    ``failures`` carries the structured
    :class:`~repro.bench.supervisor.JobFailureReport` list (job key,
    attempt timeline, final error) for the quarantined jobs, and
    ``results`` the salvaged per-job results (``None`` at failed
    indices) so callers that can tolerate holes keep the completed
    work.
    """

    def __init__(self, message: str, failures=None, results=None) -> None:
        super().__init__(message)
        self.failures = list(failures) if failures is not None else []
        self.results = results


class DegradedSweepWarning(UserWarning):
    """A sweep (or artifact load) completed in a degraded mode.

    Emitted — never raised — when the harness salvages around a failure
    it can absorb: quarantined jobs in a ``supervise()`` call, a corrupt
    cached artifact moved aside and recomputed, a checkpoint that could
    not be persisted.  Filterable like any warning; ``-W error`` turns
    degraded runs into hard failures for strict CI lanes.
    """


class GraphError(ReproError):
    """A graph IR construction or shape-inference problem."""


class CompileError(ReproError):
    """The compiler could not lower a graph or find a legal tiling."""


class SchedulingError(ReproError):
    """Stream/task/block scheduling failed (SoC or cluster level)."""
