"""Process-technology calibration constants.

The paper anchors its PPA claims on measured silicon:

* Table 3 (7 nm, 1 GHz): scalar 2 GFLOPS / 0.04 mm2; vector 256 GFLOPS /
  0.46 W / 0.70 mm2; cube 8 TFLOPS / 3.13 W / 2.57 mm2.
* Table 4 (12 nm): a 16x16x16 cube core reaches 600 GFLOPS/mm2 vs a
  4x4x4-based GPU SM at 330 GFLOPS/mm2.
* Section 2.1: feeding an operand into the cube costs 1/16 of the vector
  unit's per-operand energy because each operand is reused 16 times.

The :class:`TechModel` turns those anchors into per-MAC area/energy
constants so that PPA for *other* configurations (Lite, Tiny, 610, mobile
competitors) is predicted rather than transcribed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError

__all__ = ["TechModel", "TECH_7NM", "TECH_12NM", "TECH_16NM", "tech_by_node"]


@dataclass(frozen=True)
class TechModel:
    """Area and energy constants for one process node.

    Attributes:
        node_nm: marketing node name.
        cube_mm2_per_kmac: cube-unit area (mm2) per 1024 fp16 MAC units,
            including its L0 buffers and datapath.
        vector_mm2_per_lane: vector-unit area per fp16 lane.
        scalar_mm2: fixed area of the scalar unit.
        cube_pj_per_flop: dynamic energy per fp16 FLOP in the cube
            (operand-fetch energy amortized by 16x reuse).
        vector_pj_per_flop: dynamic energy per fp16 FLOP in the vector unit.
        sram_pj_per_byte: scratchpad access energy per byte.
        dram_pj_per_byte: HBM/DDR access energy per byte.
    """

    node_nm: float
    cube_mm2_per_kmac: float
    vector_mm2_per_lane: float
    scalar_mm2: float
    cube_pj_per_flop: float
    vector_pj_per_flop: float
    sram_pj_per_byte: float
    dram_pj_per_byte: float

    def scaled(self, target_node_nm: float) -> "TechModel":
        """Derive constants for another node with first-order Dennard-ish
        scaling: area scales with the square of feature size, energy
        roughly linearly.
        """
        if target_node_nm <= 0:
            raise ConfigError("target node must be positive")
        a = (target_node_nm / self.node_nm) ** 2
        e = target_node_nm / self.node_nm
        return TechModel(
            node_nm=target_node_nm,
            cube_mm2_per_kmac=self.cube_mm2_per_kmac * a,
            vector_mm2_per_lane=self.vector_mm2_per_lane * a,
            scalar_mm2=self.scalar_mm2 * a,
            cube_pj_per_flop=self.cube_pj_per_flop * e,
            vector_pj_per_flop=self.vector_pj_per_flop * e,
            sram_pj_per_byte=self.sram_pj_per_byte * e,
            dram_pj_per_byte=self.dram_pj_per_byte * e,
        )


# 7 nm anchors solved directly from Table 3:
#   cube: 4096 MACs -> 2.57 mm2 => 0.6425 mm2 / kMAC;
#         8 TFLOPS @ 3.13 W => 0.391 pJ/FLOP.
#   vector: 128 lanes -> 0.70 mm2 => 5.47e-3 mm2/lane;
#         256 GFLOPS @ 0.46 W => 1.797 pJ/FLOP  (~4.6x the cube: the paper's
#         16x applies to operand feeding only; MAC energy itself is common).
TECH_7NM = TechModel(
    node_nm=7,
    cube_mm2_per_kmac=2.57 / 4.0,
    vector_mm2_per_lane=0.70 / 128,
    scalar_mm2=0.04,
    cube_pj_per_flop=3.13 / 8.192e12 * 1e12,  # 8192 FLOPS/cyc @ 1 GHz
    vector_pj_per_flop=0.46 / 256e9 * 1e12,
    sram_pj_per_byte=1.2,
    dram_pj_per_byte=31.0,
)

TECH_12NM = TECH_7NM.scaled(12)
TECH_16NM = TECH_7NM.scaled(16)

_NODES: Dict[float, TechModel] = {7: TECH_7NM, 12: TECH_12NM, 16: TECH_16NM}


def tech_by_node(node_nm: float) -> TechModel:
    """Return constants for a node, deriving them by scaling if unknown."""
    if node_nm in _NODES:
        return _NODES[node_nm]
    return TECH_7NM.scaled(node_nm)
