"""Ascend core design points (paper Table 5, Sections 2.6, 3.2).

Each :class:`CoreConfig` captures one row of Table 5 plus the cube tile
shape stated in the text:

* Ascend-Max / Ascend / Ascend-Mini: 16x16x16 cube (8192 fp16 FLOPS/cycle),
  256 B vector, 1 GHz.
* Ascend-Lite: 4x16x16 cube (2048 fp16 FLOPS/cycle, Section 3.2's batch-1
  optimization of the m dimension), 128 B vector, 0.75 GHz.
* Ascend-Tiny: 4x32x4 int8-only cube (1024 int8 OPS/cycle), 32 B vector,
  0.75 GHz, ~300 mW.

Buffer capacities are not given in the paper; L1 = 1 MB, L0A/L0B = 64 KB,
L0C = 256 KB, UB = 256 KB follow public DaVinci documentation for the big
cores and are scaled down proportionally for Lite/Tiny.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..dtypes import DType, FP16, FP32, INT4, INT8
from ..errors import ConfigError

__all__ = [
    "CubeShape",
    "CoreConfig",
    "ASCEND_MAX",
    "ASCEND",
    "ASCEND_MINI",
    "ASCEND_LITE",
    "ASCEND_TINY",
    "CORE_CONFIGS",
    "core_config_by_name",
]

_GB = 1e9
_TB = 1e12


@dataclass(frozen=True)
class CubeShape:
    """The m x k x n tile the cube unit consumes per cycle.

    A GEMM of C[M, N] += A[M, K] @ B[K, N] is processed in tiles of
    ``m x k`` (A), ``k x n`` (B) producing ``m x n`` partial sums, one tile
    per cycle when fully fed (Section 2.1).
    """

    m: int
    k: int
    n: int

    @property
    def macs_per_cycle(self) -> int:
        return self.m * self.k * self.n

    @property
    def flops_per_cycle(self) -> int:
        """FLOPS (or integer OPS) per cycle; one MAC counts as two ops."""
        return 2 * self.macs_per_cycle

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.m}x{self.k}x{self.n}"


@dataclass(frozen=True)
class CoreConfig:
    """One Ascend core design point.

    Bandwidths are in bytes/second at the core's rated frequency; use the
    ``*_bytes_per_cycle`` helpers for cycle-domain numbers, which is what
    the timing engine consumes.
    """

    name: str
    frequency_hz: float
    cube: CubeShape
    cube_dtypes: Tuple[DType, ...]
    vector_width_bytes: int
    # Table 5 bus bandwidths (bytes/s): L1->L0A, L1->L0B, UB port.
    l1_to_l0a_bw: float
    l1_to_l0b_bw: float
    ub_bw: float
    # LLC (or SoC fabric) bandwidth available to this core, bytes/s.
    llc_bw_per_core: Optional[float]
    # Scratchpad capacities in bytes.
    l1_bytes: int
    l0a_bytes: int
    l0b_bytes: int
    l0c_bytes: int
    ub_bytes: int
    # Duplex UB<->vector path (training parts, Section 3.1).
    duplex_ub_vector: bool = False
    supports_training: bool = False
    # Vector elementwise ops issued per cycle is width/bytes-per-elem; some
    # transcendental ops cost more passes (see core.costs).
    notes: str = ""

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigError(f"{self.name}: frequency must be positive")
        if self.vector_width_bytes <= 0:
            raise ConfigError(f"{self.name}: vector width must be positive")
        for attr in ("l1_bytes", "l0a_bytes", "l0b_bytes", "l0c_bytes", "ub_bytes"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{self.name}: {attr} must be positive")
        if not self.cube_dtypes:
            raise ConfigError(f"{self.name}: at least one cube dtype required")

    # -- cycle-domain helpers -------------------------------------------------

    def bytes_per_cycle(self, bw_bytes_per_s: float) -> float:
        return bw_bytes_per_s / self.frequency_hz

    @property
    def l1_to_l0a_bytes_per_cycle(self) -> float:
        return self.bytes_per_cycle(self.l1_to_l0a_bw)

    @property
    def l1_to_l0b_bytes_per_cycle(self) -> float:
        return self.bytes_per_cycle(self.l1_to_l0b_bw)

    @property
    def ub_bytes_per_cycle(self) -> float:
        return self.bytes_per_cycle(self.ub_bw)

    @property
    def llc_bytes_per_cycle(self) -> Optional[float]:
        if self.llc_bw_per_core is None:
            return None
        return self.bytes_per_cycle(self.llc_bw_per_core)

    # -- peak throughput ------------------------------------------------------

    def supports_dtype(self, dtype: DType) -> bool:
        return dtype in self.cube_dtypes

    def cube_macs_per_cycle(self, dtype: DType) -> int:
        """MACs per cycle for the given source dtype.

        Relative to an fp16 baseline cube: int8 doubles and int4
        quadruples the MAC rate (Section 2.1 'can extend to 16x32x16 with
        int8'), while fp32 — the Section 7.2 HPC extension offered by the
        next-gen design point — halves it.  Ascend-Tiny is natively int8.
        """
        if not self.supports_dtype(dtype):
            raise ConfigError(f"{self.name} cube does not support {dtype}")
        base = self.cube.macs_per_cycle
        if self.cube_dtypes[0] is FP16:
            if dtype.name == "int8":
                return base * 2
            if dtype.name == "int4":
                return base * 4
            if dtype.name == "fp32":
                return base // 2
        return base

    def peak_ops(self, dtype: DType) -> float:
        """Peak throughput in FLOPS (float) or OPS (integer) at rated clock."""
        return 2 * self.cube_macs_per_cycle(dtype) * self.frequency_hz

    @property
    def vector_lanes_fp16(self) -> int:
        """Number of fp16 elements the vector unit processes per cycle."""
        return max(1, self.vector_width_bytes // 2)

    def vector_elems_per_cycle(self, dtype: DType) -> float:
        return self.vector_width_bytes / dtype.bytes


_BIG_CORE_COMMON: Dict[str, object] = dict(
    frequency_hz=1.0e9,
    cube=CubeShape(16, 16, 16),
    cube_dtypes=(FP16, INT8),
    vector_width_bytes=256,
    l1_to_l0a_bw=4 * _TB,
    l1_to_l0b_bw=2 * _TB,
    ub_bw=2 * _TB,
    l1_bytes=1024 * 1024,
    l0a_bytes=64 * 1024,
    l0b_bytes=64 * 1024,
    l0c_bytes=256 * 1024,
    ub_bytes=256 * 1024,
)

ASCEND_MAX = CoreConfig(
    name="ascend-max",
    llc_bw_per_core=94 * _GB,  # Ascend 910 row of Table 5
    duplex_ub_vector=True,
    supports_training=True,
    notes="Training + inference core used in Ascend 910 (32 per chip).",
    **_BIG_CORE_COMMON,
)

# The mid-range automotive/edge core: identical datapath, different SoC
# fabric bandwidth and int4 support (Section 3.3).
ASCEND = CoreConfig(
    name="ascend",
    frequency_hz=1.0e9,
    cube=CubeShape(16, 16, 16),
    cube_dtypes=(FP16, INT8, INT4),
    vector_width_bytes=256,
    l1_to_l0a_bw=4 * _TB,
    l1_to_l0b_bw=2 * _TB,
    ub_bw=2 * _TB,
    llc_bw_per_core=111 * _GB,  # Ascend 610 row
    l1_bytes=1024 * 1024,
    l0a_bytes=64 * 1024,
    l0b_bytes=64 * 1024,
    l0c_bytes=256 * 1024,
    ub_bytes=256 * 1024,
    notes="Autonomous-driving / cloud-inference core (Ascend 610/310); int4 capable.",
)

ASCEND_MINI = CoreConfig(
    name="ascend-mini",
    llc_bw_per_core=96 * _GB,  # Ascend 310 row
    notes="Drones / robots / embedded AI core (Ascend 310).",
    **_BIG_CORE_COMMON,
)

ASCEND_LITE = CoreConfig(
    name="ascend-lite",
    frequency_hz=0.75e9,
    cube=CubeShape(4, 16, 16),  # Section 3.2: m shrunk for batch-1 utilization
    cube_dtypes=(FP16, INT8),
    vector_width_bytes=128,
    l1_to_l0a_bw=768 * _GB,
    l1_to_l0b_bw=768 * _GB,
    ub_bw=768 * _GB,
    llc_bw_per_core=38.4 * _GB,
    l1_bytes=512 * 1024,
    l0a_bytes=32 * 1024,
    l0b_bytes=32 * 1024,
    l0c_bytes=128 * 1024,
    ub_bytes=128 * 1024,
    notes="Mobile big core (Kirin 990 5G has two).",
)

ASCEND_TINY = CoreConfig(
    name="ascend-tiny",
    frequency_hz=0.75e9,
    cube=CubeShape(4, 32, 4),  # Section 3.2; int8 only, fp16 forbidden
    cube_dtypes=(INT8,),
    vector_width_bytes=32,
    l1_to_l0a_bw=384 * _GB,
    l1_to_l0b_bw=384 * _GB,
    ub_bw=192 * _GB,
    llc_bw_per_core=None,  # Table 5: N/A
    l1_bytes=128 * 1024,
    l0a_bytes=16 * 1024,
    l0b_bytes=16 * 1024,
    l0c_bytes=32 * 1024,
    ub_bytes=32 * 1024,
    notes="Always-on wake-up core (~300 mW typical), mobile little core.",
)

# The Section 7.2 "next generation" training core: fp32 in the cube for
# HPC corner cases, wider buses, and bigger buffers feeding the 3D-SRAM
# LLC of Section 4.1.  Not a paper table row — a modeled extension.
ASCEND_NEXT = CoreConfig(
    name="ascend-next",
    frequency_hz=1.2e9,
    cube=CubeShape(16, 16, 16),
    cube_dtypes=(FP16, INT8, INT4, FP32),
    vector_width_bytes=256,
    l1_to_l0a_bw=6 * _TB,
    l1_to_l0b_bw=3 * _TB,
    ub_bw=3 * _TB,
    llc_bw_per_core=180 * _GB,
    l1_bytes=2 * 1024 * 1024,
    l0a_bytes=64 * 1024,
    l0b_bytes=64 * 1024,
    l0c_bytes=256 * 1024,
    ub_bytes=256 * 1024,
    duplex_ub_vector=True,
    supports_training=True,
    notes="Section 7.2 future-work design point (fp32 cube, 3D-SRAM era).",
)

CORE_CONFIGS: Dict[str, CoreConfig] = {
    cfg.name: cfg
    for cfg in (ASCEND_MAX, ASCEND, ASCEND_MINI, ASCEND_LITE, ASCEND_TINY,
                ASCEND_NEXT)
}


def core_config_by_name(name: str) -> CoreConfig:
    """Look up a core design point by name (e.g. ``"ascend-lite"``)."""
    try:
        return CORE_CONFIGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown core config {name!r}; known: {sorted(CORE_CONFIGS)}"
        ) from None
