"""SoC-level design points (paper Sections 3.1-3.3, Figures 10-14).

* **Ascend 910** (training): 32 Ascend-Max cores + 16 CPU cores on a 4x6
  mesh NoC (1024-bit links @ 2 GHz = 256 GB/s per link), AI LLC with 4 TB/s
  aggregate throughput, 4 HBM stacks totalling 1.2 TB/s, 256 TFLOPS fp16,
  300 W TDP, 7 nm compute die (456 mm2) + 16 nm I/O die (168 mm2).
* **Kirin 990 5G** (mobile): 2 Ascend-Lite + 1 Ascend-Tiny in a big-little
  arrangement, DVFS, ~6.88 TOPS peak int8, 4.6 TOPS/W, ~4 mm2 of NPU area.
* **Ascend 610** (automotive): Ascend cores with int4, DVPP, a safety-island
  CPU on a separate ring NoC, MPAM + QoS; 160 TOPS int8 @ 65 W, 401 mm2.
* **Ascend 310** (edge inference, Table 10): 2 Ascend-Mini cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..dtypes import DType, FP16, INT8
from ..errors import ConfigError
from .core_configs import (
    ASCEND,
    ASCEND_LITE,
    ASCEND_MAX,
    ASCEND_MINI,
    ASCEND_TINY,
    CoreConfig,
)

__all__ = [
    "NocConfig",
    "SocConfig",
    "ASCEND_910",
    "ASCEND_610",
    "ASCEND_310",
    "KIRIN_990_5G",
    "SOC_CONFIGS",
    "soc_config_by_name",
]

_GB = 1e9
_TB = 1e12
_MB = 1024 * 1024


@dataclass(frozen=True)
class NocConfig:
    """An on-chip network configuration (Section 3.1.1)."""

    topology: str  # "mesh" or "ring"
    rows: int
    cols: int
    link_bits: int
    link_frequency_hz: float
    bufferless: bool = True

    @property
    def link_bandwidth(self) -> float:
        """Per-link bandwidth in bytes/s (1024 bit @ 2 GHz -> 256 GB/s)."""
        return self.link_bits / 8 * self.link_frequency_hz

    @property
    def node_count(self) -> int:
        return self.rows * self.cols


@dataclass(frozen=True)
class SocConfig:
    """A system-on-chip integrating Ascend cores with memory and fabric."""

    name: str
    # (core config, count) pairs; mobile SoCs mix Lite and Tiny.
    core_groups: Tuple[Tuple[CoreConfig, int], ...]
    noc: NocConfig
    llc_bytes: int
    llc_bw_total: float  # aggregate LLC throughput, bytes/s
    dram_bw: float  # HBM/LPDDR bandwidth, bytes/s
    dram_bytes: int
    tdp_w: float
    process_nm: float
    die_area_mm2: float
    cpu_cores: int = 0
    has_dvpp: bool = False
    has_mpam: bool = False
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.core_groups:
            raise ConfigError(f"{self.name}: SoC needs at least one core group")
        for _, count in self.core_groups:
            if count <= 0:
                raise ConfigError(f"{self.name}: core count must be positive")

    @property
    def ai_core_count(self) -> int:
        return sum(count for _, count in self.core_groups)

    def peak_ops(self, dtype: DType) -> float:
        """Aggregate peak FLOPS/OPS over every AI core that supports ``dtype``."""
        total = 0.0
        for core, count in self.core_groups:
            if core.supports_dtype(dtype):
                total += count * core.peak_ops(dtype)
        return total

    @property
    def llc_bw_per_core(self) -> float:
        return self.llc_bw_total / self.ai_core_count


ASCEND_910 = SocConfig(
    name="ascend-910",
    core_groups=((ASCEND_MAX, 32),),
    noc=NocConfig("mesh", rows=6, cols=4, link_bits=1024, link_frequency_hz=2e9),
    llc_bytes=96 * _MB,  # Section 4.1 baseline capacity
    llc_bw_total=4 * _TB,  # Section 3.1.2: 4 TB/s to L2
    dram_bw=1.2 * _TB,  # 4 HBM stacks
    dram_bytes=32 * 1024 * _MB,
    tdp_w=300.0,
    process_nm=7,
    die_area_mm2=456.0 + 168.0,
    cpu_cores=16,
    has_dvpp=True,
    notes="DNN training SoC (Figure 10); 256 TFLOPS fp16 / 512 TOPS int8.",
)

ASCEND_610 = SocConfig(
    name="ascend-610",
    core_groups=((ASCEND, 10),),
    noc=NocConfig("mesh", rows=4, cols=4, link_bits=512, link_frequency_hz=2e9),
    llc_bytes=32 * _MB,
    llc_bw_total=10 * 111 * _GB,
    dram_bw=102 * _GB,  # LPDDR5-class
    dram_bytes=16 * 1024 * _MB,
    tdp_w=65.0,
    process_nm=7,
    die_area_mm2=401.0,
    cpu_cores=8,
    has_dvpp=True,
    has_mpam=True,
    notes="Autonomous-driving SoC (Figure 14); ~160 TOPS int8, ASIL-B core.",
)

ASCEND_310 = SocConfig(
    name="ascend-310",
    core_groups=((ASCEND_MINI, 2),),
    noc=NocConfig("ring", rows=1, cols=6, link_bits=512, link_frequency_hz=1e9),
    llc_bytes=8 * _MB,
    llc_bw_total=2 * 96 * _GB,
    dram_bw=51.2 * _GB,
    dram_bytes=8 * 1024 * _MB,
    tdp_w=8.0,
    process_nm=12,
    die_area_mm2=100.0,
    cpu_cores=8,
    has_dvpp=True,
    notes="Edge-inference SoC (Table 10); 16 TOPS int8 / 8 TFLOPS fp16 class.",
)

KIRIN_990_5G = SocConfig(
    name="kirin-990-5g",
    core_groups=((ASCEND_LITE, 2), (ASCEND_TINY, 1)),
    noc=NocConfig("ring", rows=1, cols=8, link_bits=256, link_frequency_hz=1.5e9),
    llc_bytes=4 * _MB,
    llc_bw_total=2 * 38.4 * _GB,
    dram_bw=34.1 * _GB,  # LPDDR4X-2133 x4
    dram_bytes=8 * 1024 * _MB,
    tdp_w=1.5,  # NPU subsystem budget, not the phone SoC TDP
    process_nm=7,
    die_area_mm2=4.0,  # NPU area (Table 8)
    cpu_cores=8,
    notes="Mobile SoC (Figure 13); big-little NPU, 6.88 TOPS, 4.6 TOPS/W.",
)

SOC_CONFIGS: Dict[str, SocConfig] = {
    soc.name: soc for soc in (ASCEND_910, ASCEND_610, ASCEND_310, KIRIN_990_5G)
}


def soc_config_by_name(name: str) -> SocConfig:
    """Look up an SoC design point by name (e.g. ``"ascend-910"``)."""
    try:
        return SOC_CONFIGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown SoC config {name!r}; known: {sorted(SOC_CONFIGS)}"
        ) from None
