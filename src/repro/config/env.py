"""One shared parser for ``REPRO_*`` environment knobs.

Every knob that used to hand-roll its own ``os.environ.get`` +
``int(...)`` now routes through these helpers, so a typo'd value fails
the same way everywhere: a :class:`~repro.errors.ConfigError` that names
the variable, echoes the offending value, and lists what is accepted —
instead of a bare ``ValueError`` from ``int()`` or a silent fallback to
the default.

Numeric parsing is *strict*: exactly one decimal integer (or float), no
trailing garbage, no ``_`` digit separators, no ``inf``/``nan``.  Python's
own ``int()``/``float()`` accept several of those, and the pre-audit
parsers accepted worse (``REPRO_SWEEP_WORKERS=4x`` silently fell back to
serial); a mistyped knob must fail loudly, not quietly change behavior.
"""

from __future__ import annotations

import os
import re
from typing import Optional, Sequence

from ..errors import ConfigError

__all__ = ["env_choice", "env_int", "env_float", "env_flag"]

# Exactly one optionally-signed decimal integer / float, nothing else.
_INT_RE = re.compile(r"^[+-]?[0-9]+$")
_FLOAT_RE = re.compile(r"^[+-]?([0-9]+\.?[0-9]*|\.[0-9]+)([eE][+-]?[0-9]+)?$")


def env_choice(name: str, default: str, choices: Sequence[str]) -> str:
    """The value of ``name``, validated against ``choices``.

    Unset or empty means ``default``.  Anything else must be one of
    ``choices`` (exact match after stripping whitespace).
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip()
    if value not in choices:
        raise ConfigError(
            f"{name}={raw!r} is not a valid value; accepted: "
            + ", ".join(repr(c) for c in choices)
        )
    return value


def env_flag(name: str, default: bool = False) -> bool:
    """The boolean value of a ``0``/``1`` switch.

    Unset or empty means ``default``; anything except an exact ``0`` or
    ``1`` raises :class:`ConfigError` — boolean knobs do not guess what
    ``yes``/``true``/``2`` were meant to be.
    """
    return env_choice(name, "1" if default else "0", ("0", "1")) == "1"


def env_int(name: str, default: Optional[int] = None,
            minimum: Optional[int] = None,
            special: Optional[dict] = None) -> Optional[int]:
    """The integer value of ``name``.

    Unset or empty means ``default``.  ``special`` maps exact strings
    (case-insensitive, stripped) to values — e.g. ``{"serial": 1}``.
    Non-integers (including trailing garbage like ``4x``), and integers
    below ``minimum``, raise :class:`ConfigError` naming the variable.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip()
    if special:
        hit = special.get(value.lower())
        if hit is not None:
            return hit
    if not _INT_RE.match(value):
        accepted = "an integer"
        if minimum is not None:
            accepted = f"an integer >= {minimum}"
        if special:
            accepted += " or one of " + ", ".join(
                repr(s) for s in sorted(special))
        raise ConfigError(
            f"{name}={raw!r} is not a valid value; accepted: {accepted}"
        )
    parsed = int(value)
    if minimum is not None and parsed < minimum:
        raise ConfigError(
            f"{name}={raw!r} is below the minimum of {minimum}"
        )
    return parsed


def env_float(name: str, default: Optional[float] = None,
              minimum: Optional[float] = None) -> Optional[float]:
    """The float value of ``name`` (same semantics as :func:`env_int`)."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    value = raw.strip()
    if not _FLOAT_RE.match(value):
        raise ConfigError(
            f"{name}={raw!r} is not a valid value; accepted: a number"
            + (f" >= {minimum}" if minimum is not None else "")
        )
    parsed = float(value)
    if minimum is not None and parsed < minimum:
        raise ConfigError(
            f"{name}={raw!r} is below the minimum of {minimum}"
        )
    return parsed
