"""Architecture configuration: core design points, SoC integrations, process tech.

The numbers here are the paper's published parameters (Tables 3-5, Sections
3.1-3.3) plus a small set of buffer capacities taken from public DaVinci
documentation where the paper is silent.
"""

from .core_configs import (
    CoreConfig,
    CubeShape,
    ASCEND_MAX,
    ASCEND,
    ASCEND_MINI,
    ASCEND_LITE,
    ASCEND_TINY,
    CORE_CONFIGS,
    core_config_by_name,
)
from .soc_configs import (
    SocConfig,
    ASCEND_910,
    ASCEND_610,
    ASCEND_310,
    KIRIN_990_5G,
    SOC_CONFIGS,
    soc_config_by_name,
)
from .tech import TechModel, TECH_7NM, TECH_12NM, TECH_16NM, tech_by_node

__all__ = [
    "CoreConfig",
    "CubeShape",
    "ASCEND_MAX",
    "ASCEND",
    "ASCEND_MINI",
    "ASCEND_LITE",
    "ASCEND_TINY",
    "CORE_CONFIGS",
    "core_config_by_name",
    "SocConfig",
    "ASCEND_910",
    "ASCEND_610",
    "ASCEND_310",
    "KIRIN_990_5G",
    "SOC_CONFIGS",
    "soc_config_by_name",
    "TechModel",
    "TECH_7NM",
    "TECH_12NM",
    "TECH_16NM",
    "tech_by_node",
]
