"""Device abstraction: one simulated Ascend core plus managed GM."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config.core_configs import ASCEND, CoreConfig
from ..core.core import AscendCore
from ..dtypes import DType, FP16
from ..errors import MemoryError_
from ..isa.memref import MemSpace, Region
from ..memory.allocator import FreeListAllocator

__all__ = ["Device", "DeviceBuffer"]


@dataclass
class DeviceBuffer:
    """A handle to an allocation in device global memory."""

    device: "Device"
    offset: int
    shape: Tuple[int, ...]
    dtype: DType
    freed: bool = False

    @property
    def region(self) -> Region:
        return Region(MemSpace.GM, self.offset, self.shape, self.dtype)

    @property
    def nbytes(self) -> int:
        return self.region.nbytes

    def _check_live(self) -> None:
        if self.freed:
            raise MemoryError_("use of freed device buffer")


class Device:
    """A simulated NPU device with managed global memory."""

    def __init__(self, config: CoreConfig = ASCEND,
                 gm_bytes: int = 256 * 1024 * 1024) -> None:
        self.config = config
        self.core = AscendCore(config, gm_bytes=gm_bytes)
        self._allocator = FreeListAllocator(gm_bytes)
        self.total_cycles = 0  # accumulated simulated work

    # -- memory management ---------------------------------------------------------

    def malloc(self, shape: Tuple[int, ...], dtype: DType = FP16
               ) -> DeviceBuffer:
        probe = Region(MemSpace.GM, 0, tuple(shape), dtype)
        offset = self._allocator.alloc(probe.nbytes)
        return DeviceBuffer(self, offset, tuple(shape), dtype)

    def free(self, buffer: DeviceBuffer) -> None:
        buffer._check_live()
        self._allocator.free(buffer.offset)
        buffer.freed = True

    @property
    def bytes_in_use(self) -> int:
        return self._allocator.used

    # -- host <-> device ------------------------------------------------------------

    def memcpy_h2d(self, buffer: DeviceBuffer, host: np.ndarray) -> None:
        buffer._check_live()
        host = np.asarray(host)
        if host.shape != buffer.shape:
            raise MemoryError_(
                f"h2d shape mismatch: host {host.shape} vs device {buffer.shape}"
            )
        self.core.memory.write(buffer.region, host)

    def memcpy_d2h(self, buffer: DeviceBuffer) -> np.ndarray:
        buffer._check_live()
        return self.core.memory.read(buffer.region)

    # -- execution -------------------------------------------------------------------

    def run_program(self, program, functional: bool = True, workers=None):
        """Execute a program on the device core, accumulating device time.

        ``workers`` selects the functional thread count (default: the
        ``REPRO_FUNC_WORKERS`` environment variable; serial when unset).
        """
        result = self.core.run(program, functional=functional,
                               validate=False, workers=workers)
        self.total_cycles += result.cycles
        return result

    @property
    def elapsed_seconds(self) -> float:
        return self.total_cycles / self.config.frequency_hz
