"""Host runtime — the ACL-style API layer above the simulator.

The shipped Ascend stack exposes a host runtime (device memory, streams,
events, model execution) below the frameworks of Figure 16; this package
provides the equivalent for the simulator:

* :class:`Device` — owns a simulated core and its GM; malloc/free with a
  real free-list allocator, h2d/d2h copies.
* :class:`Stream` / :class:`Event` — in-order work queues with simulated
  timestamps (Section 5.2's stream level).
* :class:`ModelRunner` — runs a whole graph on a device: cube-friendly
  ops (conv/dense/matmul) execute through compiled kernels on the core,
  the rest through the reference semantics, with one parameter store.
"""

from .device import Device, DeviceBuffer
from .stream import Event, Stream
from .executor import ModelRunner, RunReport

__all__ = ["Device", "DeviceBuffer", "Stream", "Event", "ModelRunner",
           "RunReport"]
