"""ModelRunner: execute a whole graph on a simulated device.

Cube-friendly ops (Conv2D via img2col, Dense, BatchMatMul) run as
compiled, tiled GEMM kernels on the device core — real instructions, real
cycle counts.  Everything else (pooling, normalization, softmax, CV ops)
evaluates through the reference semantics, charged to the device clock at
the vector-unit rate from the op's workload model.  One parameter store
(the ReferenceBackend's) feeds both paths, so the runner's outputs can be
checked against the pure-reference run bit-for-bit-ish (fp16 rounding on
the device path).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler.lowering import GemmLayout, lower_gemm
from ..core.costs import CostModel
from ..core.mte import im2col_array
from ..dtypes import FP16
from ..errors import SchedulingError
from ..graph import Graph, ReferenceBackend
from ..graph.ops import BatchMatMul, Conv2D, Dense, Input, Op
from ..profiling.counters import PerfCounters
from ..profiling.session import active_session, profile
from .device import Device

__all__ = ["ModelRunner", "RunReport"]


@dataclass
class RunReport:
    """Outcome of one model execution on a device."""

    outputs: Dict[str, np.ndarray]
    device_cycles: int
    offloaded_nodes: List[str] = field(default_factory=list)
    host_assisted_nodes: List[str] = field(default_factory=list)
    # Per-run performance counters — populated only when a profiling
    # session is active during run() (REPRO_PROFILE=1 or profile()).
    counters: Optional[PerfCounters] = None

    def seconds_at(self, clock_ghz: float) -> float:
        """Wall-clock seconds of the device cycles at ``clock_ghz``."""
        if clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be positive, got {clock_ghz}")
        return self.device_cycles / (clock_ghz * 1e9)


class ModelRunner:
    """Runs graphs end to end on a :class:`~repro.runtime.device.Device`."""

    # BatchMatMul with more identical small GEMMs than this evaluates on
    # the host (per-kernel simulation wall-time guard, not a cycle issue).
    MAX_DEVICE_BMM_COUNT = 32

    def __init__(self, graph: Graph, device: Device, seed: int = 0,
                 func_workers=None) -> None:
        self.graph = graph
        self.device = device
        self.backend = ReferenceBackend(graph, seed=seed)
        self._costs = CostModel(device.config)
        # Functional thread count for compiled kernels (None defers to
        # REPRO_FUNC_WORKERS; <2 is the serial oracle).
        self.func_workers = func_workers

    # -- public API --------------------------------------------------------------

    def run(self, feeds: Dict[str, np.ndarray]) -> RunReport:
        # With a profiling session active, scope a child session to this
        # run: every kernel the device schedules reports into it, the
        # report carries the run's own counters, and the totals still
        # fold back into the enclosing session.  With profiling off this
        # is one None check.
        if active_session() is None:
            return self._run(feeds)
        with profile() as scoped:
            report = self._run(feeds)
            scoped.note("graph", self.graph.name)
            report.counters = scoped.counters
        return report

    def _run(self, feeds: Dict[str, np.ndarray]) -> RunReport:
        values: Dict[str, np.ndarray] = {}
        offloaded: List[str] = []
        host: List[str] = []
        start_cycles = self.device.total_cycles
        for op in self.graph:
            if isinstance(op, Input):
                name = op.output.name
                if name not in feeds:
                    raise SchedulingError(f"missing feed {name!r}")
                values[name] = np.asarray(feeds[name])
                continue
            srcs = [values[t.name] for t in op.inputs]
            out, on_device = self._execute(op, srcs)
            values[op.output.name] = out
            (offloaded if on_device else host).append(op.name)
        outputs = {t.name: values[t.name] for t in self.graph.outputs}
        return RunReport(
            outputs=outputs,
            device_cycles=self.device.total_cycles - start_cycles,
            offloaded_nodes=offloaded,
            host_assisted_nodes=host,
        )

    # -- op dispatch ----------------------------------------------------------------

    def _execute(self, op: Op, srcs) -> Tuple[np.ndarray, bool]:
        params = self.backend.params.get(op.name, {})
        if isinstance(op, Dense):
            x = srcs[0]
            flat = x.reshape(-1, x.shape[-1])
            out = self._device_gemm(flat, params["weight"],
                                    params.get("bias") if op.bias else None)
            return out.reshape(*x.shape[:-1], op.units), True
        if isinstance(op, Conv2D):
            x = srcs[0]
            kh, kw = op.kernel
            cols = np.concatenate([
                im2col_array(img.astype(np.float16), op.kernel, op.stride,
                             op.padding)
                for img in x
            ])
            w = params["weight"].reshape(kh * kw * op.in_channels,
                                         op.out_channels)
            out = self._device_gemm(cols, w,
                                    params.get("bias") if op.bias else None)
            return out.reshape(op.output.shape), True
        if isinstance(op, BatchMatMul):
            a, b = srcs
            count = math.prod(a.shape[:-2]) if a.ndim > 2 else 1
            if count <= self.MAX_DEVICE_BMM_COUNT:
                a2 = a.reshape(count, a.shape[-2], a.shape[-1])
                b2 = b.reshape(count, b.shape[-2], b.shape[-1])
                outs = []
                for i in range(count):
                    rhs = b2[i].T if op.transpose_b else b2[i]
                    outs.append(self._device_gemm(a2[i], rhs, None))
                return np.stack(outs).reshape(op.output.shape), True
        # Host-assisted path: reference numerics, device clock charged at
        # the vector-unit rate the workload model defines.
        out = self.backend.eval_op(op, srcs)
        self._charge_vector_time(op)
        return out, False

    def _device_gemm(self, a: np.ndarray, b: np.ndarray,
                     bias: Optional[np.ndarray]) -> np.ndarray:
        a16 = np.ascontiguousarray(a, dtype=np.float16)
        b16 = np.ascontiguousarray(b, dtype=np.float16)
        m, k = a16.shape
        _, n = b16.shape
        buf_a = self.device.malloc((m, k))
        buf_b = self.device.malloc((k, n))
        buf_c = self.device.malloc((m, n))
        buf_bias = self.device.malloc((1, n)) if bias is not None else None
        try:
            layout = GemmLayout(
                buf_a.offset, buf_b.offset, buf_c.offset,
                bias_offset=buf_bias.offset if buf_bias else None,
            )
            program = lower_gemm(m, k, n, self.device.config, layout=layout,
                                 tag="runtime")
            self.device.memcpy_h2d(buf_a, a16)
            self.device.memcpy_h2d(buf_b, b16)
            if buf_bias is not None:
                self.device.memcpy_h2d(
                    buf_bias, np.asarray(bias, np.float16).reshape(1, n))
            self.device.run_program(program, workers=self.func_workers)
            return self.device.memcpy_d2h(buf_c).astype(np.float32)
        finally:
            for buf in (buf_a, buf_b, buf_c, buf_bias):
                if buf is not None:
                    self.device.free(buf)

    def _charge_vector_time(self, op: Op) -> None:
        work = op.workload()
        cycles = 0
        for v in work.vector:
            cycles += self._costs.vector_cycles(v.elems, v.dtype.bytes,
                                                passes=v.passes)
        self.device.total_cycles += cycles
