"""Streams and events: the Section 5.2 stream/task level as a host API.

A stream is an in-order queue of tasks on a device; independent streams
model independent apps.  Simulated time: each stream keeps its own
cursor; enqueued work starts at the later of the stream cursor and the
task's dependency events, exactly like the SoC task scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import SchedulingError
from .device import Device

__all__ = ["Event", "Stream"]


@dataclass
class Event:
    """A recorded point in a stream's simulated timeline."""

    name: str = "event"
    cycles: Optional[int] = None  # set when recorded

    @property
    def recorded(self) -> bool:
        return self.cycles is not None


class Stream:
    """An in-order task queue with simulated timestamps."""

    def __init__(self, device: Device, name: str = "stream",
                 launch_overhead_cycles: int = 2000) -> None:
        self.device = device
        self.name = name
        self.launch_overhead_cycles = launch_overhead_cycles
        self._cursor = 0  # stream-local simulated time
        self._log: List[str] = []

    @property
    def cursor_cycles(self) -> int:
        return self._cursor

    def launch(self, program, functional: bool = True,
               wait_for: Optional[List[Event]] = None,
               workers=None) -> None:
        """Enqueue a program; it starts after the stream's prior work and
        all ``wait_for`` events."""
        start = self._cursor + self.launch_overhead_cycles
        for event in wait_for or ():
            if not event.recorded:
                raise SchedulingError(
                    f"stream {self.name!r} waits on unrecorded event "
                    f"{event.name!r}"
                )
            start = max(start, event.cycles)
        result = self.device.run_program(program, functional=functional,
                                         workers=workers)
        self._cursor = start + result.cycles
        self._log.append(f"{program.name}@{start}+{result.cycles}")

    def record(self, event: Event) -> Event:
        event.cycles = self._cursor
        return event

    def synchronize(self) -> int:
        """Host-side join; returns the stream's simulated finish time."""
        return self._cursor

    @property
    def log(self) -> List[str]:
        return list(self._log)
