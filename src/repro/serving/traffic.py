"""Open-loop seeded traffic generator.

Arrivals are *open loop*: the trace is fixed by ``(seed, tenant specs)``
before the simulator runs, and does not react to completions — the
property that lets the same offered load compare two schedulers fairly
(and lets an overloaded design point show its real queueing collapse
rather than a throttled one).

Determinism contract (same construction as
:mod:`repro.reliability.chaos` uses per-(seed, job, attempt)): every
request's randomness comes from a fresh generator derived from
``(seed, tenant_key(name), request_index)``, with a fixed draw order
(inter-arrival gap, prefill length, decode length).  Tenant keys hash
the tenant *name*, not its position in the spec list, so adding,
removing, or reordering tenants never perturbs another tenant's trace —
tenant A's requests are byte-identical with and without tenant B in the
campaign.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from .request import Request

__all__ = ["TenantSpec", "tenant_key", "generate_trace", "tenant_trace"]


def _normalized(name: str, choices: Sequence[int],
                weights: Sequence[float]) -> Tuple[float, ...]:
    if not choices:
        raise ConfigError(f"tenant {name}: empty length distribution")
    if any(c < 1 for c in choices):
        raise ConfigError(f"tenant {name}: token lengths must be >= 1")
    if weights and len(weights) != len(choices):
        raise ConfigError(
            f"tenant {name}: {len(weights)} weights for "
            f"{len(choices)} choices")
    raw = tuple(weights) if weights else tuple(1.0 for _ in choices)
    if any(w < 0 for w in raw) or sum(raw) <= 0:
        raise ConfigError(f"tenant {name}: weights must be >= 0, sum > 0")
    total = float(sum(raw))
    return tuple(w / total for w in raw)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's offered load, QoS class, and SLO.

    ``kv_floor``/``kv_ceiling`` are MPAM shares of the KV capacity
    (the :class:`~repro.soc.qos.MpamPartition` knobs): the floor is
    reserved for this tenant even under another tenant's flood, the
    ceiling caps how much of the cache it can monopolize.
    """

    name: str
    rate_rps: float                 # mean arrival rate (Poisson process)
    requests: int                   # offered request count
    prefill_choices: Tuple[int, ...] = (32, 64, 128)
    prefill_weights: Tuple[float, ...] = ()
    decode_choices: Tuple[int, ...] = (8, 16, 32, 64)
    decode_weights: Tuple[float, ...] = ()
    slo_ms: float = 500.0           # end-to-end latency deadline
    priority: int = 0               # QoS weight (higher wins contention)
    critical: bool = False
    kv_floor: float = 0.0
    kv_ceiling: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.rate_rps <= 0:
            raise ConfigError(f"tenant {self.name}: rate must be positive")
        if self.requests < 1:
            raise ConfigError(f"tenant {self.name}: needs >= 1 request")
        if self.slo_ms <= 0:
            raise ConfigError(f"tenant {self.name}: SLO must be positive")
        if not 0 <= self.kv_floor <= self.kv_ceiling <= 1:
            raise ConfigError(
                f"tenant {self.name}: bad KV shares floor={self.kv_floor} "
                f"ceiling={self.kv_ceiling}")
        _normalized(self.name, self.prefill_choices, self.prefill_weights)
        _normalized(self.name, self.decode_choices, self.decode_weights)

    def slo_cycles(self, frequency_hz: float) -> int:
        return max(1, int(round(self.slo_ms * 1e-3 * frequency_hz)))

    @property
    def max_tokens(self) -> int:
        return max(self.prefill_choices) + max(self.decode_choices)


def tenant_key(name: str) -> int:
    """Stable 63-bit integer identity for a tenant name.

    sha256-based so it is identical across processes and platforms
    (``hash()`` is salted per process) and independent of the tenant's
    position in the campaign spec.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _pick(choices: Sequence[int], cumulative: Sequence[float],
          draw: float) -> int:
    for value, edge in zip(choices, cumulative):
        if draw < edge:
            return value
    return choices[-1]


def tenant_trace(spec: TenantSpec, seed: int,
                 frequency_hz: float) -> List[Request]:
    """Generate one tenant's request trace on the device clock.

    Each request consumes exactly three draws from its own
    ``default_rng([seed, tenant_key, index])`` stream, in fixed order:
    exponential inter-arrival gap, prefill length, decode length.
    """
    key = tenant_key(spec.name)
    p_weights = _normalized(spec.name, spec.prefill_choices,
                            spec.prefill_weights)
    d_weights = _normalized(spec.name, spec.decode_choices,
                            spec.decode_weights)
    p_cum = tuple(np.cumsum(p_weights))
    d_cum = tuple(np.cumsum(d_weights))
    trace: List[Request] = []
    clock = 0
    for index in range(spec.requests):
        rng = np.random.default_rng([seed, key, index])
        u_gap = rng.random()
        u_prefill = rng.random()
        u_decode = rng.random()
        gap_s = -math.log1p(-u_gap) / spec.rate_rps
        clock += max(1, int(round(gap_s * frequency_hz)))
        trace.append(Request(
            tenant=spec.name,
            index=index,
            arrival_cycles=clock,
            prefill_tokens=_pick(spec.prefill_choices, p_cum, u_prefill),
            decode_tokens=_pick(spec.decode_choices, d_cum, u_decode),
        ))
    return trace


def generate_trace(tenants: Sequence[TenantSpec], seed: int,
                   frequency_hz: float) -> List[Request]:
    """The merged campaign trace, sorted by (arrival, tenant, index).

    The sort key is fully deterministic (ties broken by tenant name then
    index), so the merged order never depends on spec-list order.
    """
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate tenant names: {sorted(names)}")
    merged: List[Request] = []
    for spec in tenants:
        merged.extend(tenant_trace(spec, seed, frequency_hz))
    merged.sort(key=lambda r: (r.arrival_cycles, r.tenant, r.index))
    return merged
