"""Serving CLI: run seeded campaigns and the CI smoke gate.

::

    python -m repro.serving run --soc ascend-310 --mode continuous
    python -m repro.serving run --mode static --policy spf
    python -m repro.serving smoke          # the `make serve-smoke` gate

``run`` simulates one campaign of the standard two-tenant mix (an
interactive *chat* tenant with a tight SLO and a guaranteed MPAM floor
of the KV budget, plus a bulk *batch* tenant with longer prompts and a
ceiling) and prints the per-tenant latency/goodput/SLO table.

``smoke`` is the ``make serve-smoke`` target: a fixed-seed campaign of
>= 10k requests across the two tenants runs twice under continuous
batching (the two reports must be **byte-identical**, pinned by digest)
and once under static batching on the *same trace and the same compiled
step costs* — continuous batching must strictly beat static batching on
aggregate goodput.  Nonzero exit otherwise; the artifact lands in
``benchmarks/results/serving_smoke.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional, Tuple

from ..config.core_configs import core_config_by_name
from ..config.soc_configs import soc_config_by_name
from ..errors import ConfigError, ReproError
from ..models.gpt import GPT_MEDIUM, GPT_SMALL, GPT_TINY, GptConfig
from .scheduler import MODES, ServeReport, ServeSpec, simulate_serving
from .stepcost import StepCostModel
from .traffic import TenantSpec

__all__ = ["main", "smoke_spec", "SMOKE_SEED", "SMOKE_REQUESTS"]

GPT_ZOO = {cfg.name: cfg for cfg in (GPT_TINY, GPT_SMALL, GPT_MEDIUM)}

# The fixed-seed recipe `make serve-smoke` enforces.
SMOKE_SEED = 0
SMOKE_REQUESTS = 5000          # per tenant; 2 tenants -> 10k offered
SMOKE_MODEL = "gpt-tiny"
SMOKE_CORE = "ascend-mini"
SMOKE_SOC = "ascend-310"
SMOKE_MAX_BATCH = 16
# On-chip only: admission must be a real capacity decision in the gate.
SMOKE_KV_FRACTION = 0.0
# Push the offered load well past the design point's service capacity:
# the continuous-vs-static goodput gap is a statement about scheduling
# under pressure, not about an idle system.
SMOKE_RATE_SCALE = 2.0


def default_tenants(requests: int, rate_scale: float = 1.0,
                    ) -> Tuple[TenantSpec, TenantSpec]:
    """The standard two-tenant mix: interactive chat vs. bulk batch.

    *chat* holds an MPAM floor of 25% of the KV budget (priority 1,
    critical) so the bulk tenant's long prompts can never starve it;
    *batch* is capped at 75% by its ceiling.
    """
    chat = TenantSpec(
        name="chat", rate_rps=300.0 * rate_scale, requests=requests,
        prefill_choices=(16, 32, 64), decode_choices=(8, 16, 32),
        slo_ms=250.0, priority=1, critical=True, kv_floor=0.25)
    batch = TenantSpec(
        name="batch", rate_rps=200.0 * rate_scale, requests=requests,
        prefill_choices=(64, 128, 256), prefill_weights=(1.0, 2.0, 1.0),
        decode_choices=(16, 32, 64), slo_ms=1000.0, priority=0,
        kv_ceiling=0.75)
    return chat, batch


def smoke_spec() -> ServeSpec:
    """The fixed campaign `make serve-smoke` runs."""
    return ServeSpec(
        model=GPT_ZOO[SMOKE_MODEL],
        core=core_config_by_name(SMOKE_CORE),
        soc=soc_config_by_name(SMOKE_SOC),
        tenants=default_tenants(SMOKE_REQUESTS, SMOKE_RATE_SCALE),
        seed=SMOKE_SEED,
        policy="fcfs",
        max_batch=SMOKE_MAX_BATCH,
        kv_fraction=SMOKE_KV_FRACTION,
    )


def _print_report(report: ServeReport) -> None:
    p = report.payload
    agg = report.aggregate
    print(f"{p['model']} on {p['core']}/{p['soc']} — mode={p['mode']} "
          f"policy={p['policy']} seed={p['seed']} "
          f"max_batch={p['max_batch']} cost={p['cost_tier']}")
    kv = p["kv"]
    print(f"  kv: {kv['total_bytes'] / 1e6:.1f} MB budget "
          f"({kv['token_capacity']} tokens), peak reserved "
          f"{kv['peak_reserved_bytes'] / 1e6:.1f} MB")
    for name, t in p["tenants"].items():
        lat, ttft = t["latency"], t["ttft"]
        print(f"  {name}: {t['completed']}/{t['offered']} done "
              f"({t['rejected']} rejected) | p50/p99 latency "
              f"{lat['p50']:,}/{lat['p99']:,} cyc | p50 TTFT "
              f"{ttft['p50']:,} cyc | SLO {t['slo_attainment']:.1%} | "
              f"goodput {t['goodput_rps']:.1f} rps")
    print(f"  aggregate: {agg['completed']}/{agg['offered']} done | "
          f"SLO {agg['slo_attainment']:.1%} | "
          f"goodput {agg['goodput_rps']:.1f} rps | "
          f"throughput {agg['throughput_rps']:.1f} rps | "
          f"{agg['tokens_per_s']:.0f} tok/s | "
          f"makespan {p['makespan_s']:.3f} s "
          f"({p['steps']['iterations']} iterations, "
          f"{p['steps'].get('distinct_buckets', '?')} compiled buckets)")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.model not in GPT_ZOO:
        raise ConfigError(
            f"unknown GPT config {args.model!r}; known: "
            f"{sorted(GPT_ZOO)}")
    soc = soc_config_by_name(args.soc)
    core = (core_config_by_name(args.core) if args.core
            else soc.core_groups[0][0])
    spec = ServeSpec(
        model=GPT_ZOO[args.model], core=core, soc=soc,
        tenants=default_tenants(args.requests, args.rate_scale),
        seed=args.seed,
        policy=args.policy, max_batch=args.max_batch,
        kv_fraction=args.kv_fraction)
    start = time.perf_counter()
    report = simulate_serving(spec, mode=args.mode)
    elapsed = time.perf_counter() - start
    _print_report(report)
    print(f"  digest {report.digest()[:16]}… in {elapsed:.1f}s wall")
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_dict(), indent=2,
                                  sort_keys=True) + "\n")
        print(f"  report: {out}")
    return 0


def _results_dir() -> Path:
    """``benchmarks/results`` under the repo root (cwd as a fallback)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").is_file():
            return parent / "benchmarks" / "results"
    return Path.cwd() / "benchmarks" / "results"


def _cmd_smoke(args: argparse.Namespace) -> int:
    failures: List[str] = []
    start = time.perf_counter()
    spec = smoke_spec()
    offered = sum(t.requests for t in spec.tenants)
    print(f"[serve-smoke] campaign: {offered} requests, "
          f"{len(spec.tenants)} tenants, {SMOKE_MODEL} on "
          f"{SMOKE_CORE}/{SMOKE_SOC}, seed={SMOKE_SEED}")
    if offered < 10_000:
        failures.append(f"campaign offers only {offered} requests (< 10k)")
    if len(spec.tenants) < 2:
        failures.append("campaign must mix >= 2 tenants")

    # One shared cost model: both schedulers price steps from the same
    # compiled buckets, so the goodput gap is scheduling, not pricing.
    cost = StepCostModel(spec.model, spec.core, dtype=spec.dtype)

    first = simulate_serving(spec, mode="continuous", cost_model=cost)
    print("[serve-smoke] continuous run 1:")
    _print_report(first)
    second = simulate_serving(spec, mode="continuous", cost_model=cost)
    if first.digest() != second.digest():
        failures.append(
            f"continuous campaign not reproducible: digest "
            f"{first.digest()[:16]} != {second.digest()[:16]}")
    else:
        print(f"[serve-smoke] repeat run byte-identical "
              f"(digest {first.digest()[:16]}…)")

    static = simulate_serving(spec, mode="static", cost_model=cost)
    print("[serve-smoke] static baseline:")
    _print_report(static)
    cont_goodput = first.goodput_rps()
    stat_goodput = static.goodput_rps()
    if not cont_goodput > stat_goodput:
        failures.append(
            f"continuous batching goodput {cont_goodput:.2f} rps does not "
            f"beat static batching {stat_goodput:.2f} rps")
    else:
        print(f"[serve-smoke] goodput: continuous {cont_goodput:.1f} rps > "
              f"static {stat_goodput:.1f} rps "
              f"({cont_goodput / stat_goodput:.2f}x)")

    elapsed = time.perf_counter() - start
    artifact = {
        "schema": 1,
        "campaign": {
            "model": SMOKE_MODEL, "core": SMOKE_CORE, "soc": SMOKE_SOC,
            "seed": SMOKE_SEED, "offered": offered,
            "tenants": sorted(t.name for t in spec.tenants),
            "max_batch": SMOKE_MAX_BATCH,
            "kv_fraction": SMOKE_KV_FRACTION,
        },
        "digest": first.digest(),
        "repeat_digest": second.digest(),
        "continuous": first.payload,
        "static": static.payload,
        "goodput_ratio": (cont_goodput / stat_goodput
                          if stat_goodput else None),
        "gates": failures,
        "elapsed_seconds": round(elapsed, 2),
    }
    out = _results_dir() / "serving_smoke.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    print(f"[serve-smoke] report: {out}")

    if failures:
        for failure in failures:
            print(f"[serve-smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"[serve-smoke] OK in {elapsed:.1f}s — {offered} requests "
          f"byte-identical across runs, continuous beats static "
          f"{cont_goodput / stat_goodput:.2f}x on goodput")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="request-level LLM serving over the simulator")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one serving campaign")
    run.add_argument("--model", default="gpt-tiny",
                     help=f"GPT config ({'|'.join(sorted(GPT_ZOO))})")
    run.add_argument("--soc", default="ascend-310")
    run.add_argument("--core", default=None,
                     help="core config (default: the SoC's first group)")
    run.add_argument("--mode", default="continuous", choices=MODES)
    run.add_argument("--policy", default=None, choices=("fcfs", "spf"),
                     help="admission order (default: REPRO_SERVE_POLICY)")
    run.add_argument("--max-batch", type=int, default=None)
    run.add_argument("--kv-fraction", type=float, default=None)
    run.add_argument("--requests", type=int, default=1000,
                     help="requests per tenant")
    run.add_argument("--rate-scale", type=float, default=1.0,
                     help="scale both tenants' arrival rates")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--out", default=None, help="write the JSON report")
    run.set_defaults(func=_cmd_run)

    smoke = sub.add_parser("smoke", help="the make serve-smoke CI gate")
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
