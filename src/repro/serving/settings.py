"""The ``REPRO_SERVE_*`` environment knobs.

* ``REPRO_SERVE_POLICY`` — batch-admission order: ``fcfs`` (arrival
  order, the default) or ``spf`` (shortest-prefill-first).
* ``REPRO_SERVE_MAX_BATCH`` — iteration-level batch-size ceiling
  (default 32): how many requests the engine keeps in flight at once,
  on top of the KV-capacity constraint.
* ``REPRO_SERVE_KV_FRACTION`` — fraction of the design point's DRAM
  left after weights that the KV cache may occupy (default 0.3, must
  lie in [0, 1]).  On-chip capacity (LLC + per-core L1/UB) is always
  available to the cache on top of this.
* ``REPRO_SERVE_PREDICT`` — ``1`` prices engine steps with the learned
  cycle predictor (:mod:`repro.perf.predictor`) instead of compiling +
  scheduling each (phase, batch, context) bucket.  Off by default:
  reported numbers are simulated unless explicitly opted in.

All parsing is strict (:mod:`repro.config.env`): garbage values raise
:class:`~repro.errors.ConfigError` naming the variable instead of
silently changing what a campaign measures; unset knobs leave behavior
byte-identical to the built-in defaults.
"""

from __future__ import annotations

from ..config.env import env_choice, env_flag, env_float, env_int
from ..errors import ConfigError

__all__ = [
    "serve_policy",
    "serve_max_batch",
    "serve_kv_fraction",
    "serve_predict",
    "POLICIES",
]

_ENV_POLICY = "REPRO_SERVE_POLICY"
_ENV_MAX_BATCH = "REPRO_SERVE_MAX_BATCH"
_ENV_KV_FRACTION = "REPRO_SERVE_KV_FRACTION"
_ENV_PREDICT = "REPRO_SERVE_PREDICT"

POLICIES = ("fcfs", "spf")
DEFAULT_POLICY = "fcfs"
DEFAULT_MAX_BATCH = 32
DEFAULT_KV_FRACTION = 0.3


def serve_policy() -> str:
    """Admission policy (``fcfs``/``spf``); anything else raises."""
    return env_choice(_ENV_POLICY, DEFAULT_POLICY, POLICIES)


def serve_max_batch() -> int:
    """In-flight request ceiling per engine iteration (>= 1)."""
    return env_int(_ENV_MAX_BATCH, default=DEFAULT_MAX_BATCH, minimum=1)


def serve_kv_fraction() -> float:
    """KV share of post-weight DRAM, in [0, 1]."""
    value = env_float(_ENV_KV_FRACTION, default=DEFAULT_KV_FRACTION,
                      minimum=0.0)
    if value > 1.0:
        raise ConfigError(
            f"{_ENV_KV_FRACTION}={value!r} is above the maximum of 1.0"
        )
    return value


def serve_predict() -> bool:
    """Whether step costs come from the predictor fast tier (default off)."""
    return env_flag(_ENV_PREDICT, default=False)
