"""``python -m repro.serving`` entry point."""

import sys

from .cli import main

sys.exit(main())
