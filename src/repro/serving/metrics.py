"""Exact order-statistic latency metrics.

``np.quantile``'s default ``linear`` interpolation invents cycle counts
that no request ever saw (the p50 of ``[1, 2, 3, 4]`` becomes ``2.5``)
and its float arithmetic can flip the reported percentile between
platforms when two methods straddle a sample.  Serving SLO numbers must
be *exact order statistics*: :func:`exact_percentile` uses the
nearest-rank method on the sorted integer cycle counts — the returned
value is always one of the observed samples, computed with exact
(Fraction) rank arithmetic, so p50/p99 are byte-identical across runs,
seeds, and platforms.

(The predictor's MAPE reporting keeps ``np.quantile`` — an error
*summary* may interpolate; an SLO *attainment* number may not.)
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Sequence

from ..errors import SchedulingError

__all__ = ["exact_percentile", "latency_summary"]


def exact_percentile(values: Sequence[int], pct: float) -> int:
    """Nearest-rank percentile of integer samples — no interpolation.

    The rank is ``ceil(pct/100 * n)`` computed in exact rational
    arithmetic (the float ``pct`` converts to a Fraction losslessly), so
    boundary cases like ``pct=25`` on ``n=4`` never depend on the
    platform's rounding of ``0.25 * 4``.
    """
    if not values:
        raise SchedulingError("exact_percentile of an empty sample")
    if not 0 < pct <= 100:
        raise SchedulingError(f"percentile must lie in (0, 100], got {pct}")
    ordered = sorted(int(v) for v in values)
    rank = math.ceil(Fraction(pct) * len(ordered) / 100)
    return ordered[max(0, rank - 1)]


def latency_summary(cycles: Sequence[int]) -> Dict[str, int]:
    """p50/p90/p99/max of integer latencies, all exact order statistics.

    The mean is reported in integer cycles (floor of the exact mean) so
    the whole summary is reproducible bit-for-bit.
    """
    if not cycles:
        return {"count": 0, "p50": 0, "p90": 0, "p99": 0, "max": 0, "mean": 0}
    return {
        "count": len(cycles),
        "p50": exact_percentile(cycles, 50),
        "p90": exact_percentile(cycles, 90),
        "p99": exact_percentile(cycles, 99),
        "max": max(int(v) for v in cycles),
        "mean": sum(int(v) for v in cycles) // len(cycles),
    }
