"""KV-cache residency against a design point's real memory capacities.

Batch admission in the serving layer is *capacity-constrained*: a
request may only enter the running batch if its worst-case KV footprint
(prompt + every token it will generate, across all layers) fits in the
design point's modeled cache budget.  The budget is built from the same
capacity numbers every other part of the simulator uses:

* **on-chip**: the SoC LLC plus each core's L1 and UB scratchpads — the
  tier the hot tail of the cache lives in;
* **GM**: a configurable fraction (``REPRO_SERVE_KV_FRACTION``) of DRAM
  *after* the model's weights are resident.

Per-tenant isolation reuses the automotive MPAM machinery
(:class:`~repro.soc.qos.MpamPartition` / :class:`~repro.soc.qos.QosArbiter`
from Section 3.3): each tenant's partition gives it a guaranteed floor
of the KV budget that no flood can take, and a ceiling that stops it
monopolizing the cache.

The :class:`KvLedger` enforces all of this and keeps conservation
counters — every offered request is exactly one of admitted / rejected /
queued at all times, and resident bytes never exceed reserved bytes
never exceed capacity (the invariants the hypothesis suite pins).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..config.core_configs import CoreConfig
from ..config.soc_configs import SocConfig
from ..dtypes import DType, FP16
from ..errors import SchedulingError
from ..models.gpt import GptConfig
from ..soc.qos import MpamPartition, QosArbiter, TrafficClass
from .traffic import TenantSpec

__all__ = ["KvCapacity", "KvLedger", "qos_arbiter_for"]


@dataclass(frozen=True)
class KvCapacity:
    """The modeled KV budget of one (model, core, SoC) design point."""

    model: str
    onchip_bytes: int        # LLC + per-core (L1 + UB)
    gm_bytes: int            # post-weight DRAM share
    weight_bytes: int        # what the model's parameters pin in DRAM
    bytes_per_token: int

    @property
    def total_bytes(self) -> int:
        return self.onchip_bytes + self.gm_bytes

    @property
    def token_capacity(self) -> int:
        """How many tokens of KV the design point can keep resident."""
        return self.total_bytes // self.bytes_per_token

    @classmethod
    def for_design_point(cls, model: GptConfig, core: CoreConfig,
                         soc: SocConfig, kv_fraction: float,
                         dtype: DType = FP16) -> "KvCapacity":
        """Size the KV budget from the design point's own capacities."""
        if not 0.0 <= kv_fraction <= 1.0:
            raise SchedulingError(
                f"kv_fraction must lie in [0, 1], got {kv_fraction}")
        onchip = soc.llc_bytes + sum(
            count * (c.l1_bytes + c.ub_bytes) for c, count in soc.core_groups)
        weights = int(model.param_count() * dtype.bytes)
        gm = int(max(0, soc.dram_bytes - weights) * kv_fraction)
        bpt = model.kv_bytes_per_token(dtype)
        capacity = cls(model=model.name, onchip_bytes=int(onchip),
                       gm_bytes=gm, weight_bytes=weights,
                       bytes_per_token=bpt)
        if capacity.token_capacity < 1:
            raise SchedulingError(
                f"{model.name} on {soc.name}: KV budget "
                f"{capacity.total_bytes} B holds no tokens "
                f"({bpt} B/token)")
        return capacity


def qos_arbiter_for(tenants: Sequence[TenantSpec],
                    capacity_bytes: int) -> QosArbiter:
    """An MPAM arbiter over the KV budget, one class per tenant.

    Floors/ceilings come straight from the tenant specs'
    ``kv_floor``/``kv_ceiling`` shares; the arbiter's own validation
    (floor sum <= 100%, floor <= ceiling) applies unchanged.
    """
    classes = [TrafficClass(name=t.name, priority=t.priority,
                            critical=t.critical) for t in tenants]
    partitions = [
        MpamPartition(traffic_class=t.name, min_share=t.kv_floor,
                      max_share=t.kv_ceiling)
        for t in tenants if t.kv_floor > 0 or t.kv_ceiling < 1
    ]
    return QosArbiter(total_bandwidth=float(capacity_bytes),
                      classes=classes, partitions=partitions)


class KvLedger:
    """Byte-exact KV accounting with MPAM floors and ceilings.

    Reservation is worst-case at admission (prompt + full generation),
    so an admitted request can never be evicted mid-flight — the
    simplest residency discipline that still makes admission a real
    capacity decision.  ``grow`` tracks the *actual* resident bytes as
    tokens materialize, for utilization reporting and the
    resident <= reserved <= capacity invariant chain.
    """

    def __init__(self, capacity: KvCapacity,
                 tenants: Sequence[TenantSpec]) -> None:
        self.capacity = capacity
        self.tenants = {t.name: t for t in tenants}
        # Reuses the MPAM validation + share semantics from soc.qos.
        self.arbiter = qos_arbiter_for(tenants, capacity.total_bytes)
        self.reserved: Dict[str, int] = {t.name: 0 for t in tenants}
        self.resident: Dict[str, int] = {t.name: 0 for t in tenants}
        self.peak_reserved = 0
        self.peak_resident = 0
        # Conservation counters (requests, not bytes).
        self.admitted = 0
        self.released = 0
        self.rejected = 0

    # -- share geometry -------------------------------------------------------

    def _floor_bytes(self, name: str) -> int:
        part = self.arbiter.partitions.get(name)
        return int(part.min_share * self.capacity.total_bytes) if part else 0

    def _ceiling_bytes(self, name: str) -> int:
        part = self.arbiter.partitions.get(name)
        share = part.max_share if part else 1.0
        return int(share * self.capacity.total_bytes)

    def _available_to(self, name: str) -> int:
        """Free bytes ``name`` may claim: global free space minus the
        unused part of every *other* tenant's guaranteed floor."""
        if name not in self.reserved:
            raise SchedulingError(f"unknown tenant {name!r}")
        free = self.capacity.total_bytes - sum(self.reserved.values())
        held_floors = sum(
            max(0, self._floor_bytes(other) - used)
            for other, used in self.reserved.items() if other != name
        )
        tenant_room = self._ceiling_bytes(name) - self.reserved[name]
        return max(0, min(free - held_floors, tenant_room))

    # -- admission ------------------------------------------------------------

    def feasible_ever(self, name: str, nbytes: int) -> bool:
        """Could this reservation fit on an otherwise idle system?"""
        if name not in self.reserved:
            raise SchedulingError(f"unknown tenant {name!r}")
        others_floors = sum(self._floor_bytes(o) for o in self.reserved
                            if o != name)
        room = min(self._ceiling_bytes(name),
                   self.capacity.total_bytes - others_floors)
        return nbytes <= room

    def try_reserve(self, name: str, nbytes: int) -> bool:
        if nbytes <= 0:
            raise SchedulingError(f"{name}: reservation must be positive")
        if nbytes > self._available_to(name):
            return False
        self.reserved[name] += nbytes
        self.admitted += 1
        self.peak_reserved = max(self.peak_reserved,
                                 sum(self.reserved.values()))
        self._check()
        return True

    def note_rejected(self) -> None:
        self.rejected += 1

    def grow(self, name: str, nbytes: int) -> None:
        """Materialize ``nbytes`` of actual KV inside a reservation."""
        self.resident[name] += nbytes
        if self.resident[name] > self.reserved[name]:
            raise SchedulingError(
                f"{name}: resident {self.resident[name]} B exceeds "
                f"reservation {self.reserved[name]} B")
        self.peak_resident = max(self.peak_resident,
                                 sum(self.resident.values()))
        self._check()

    def release(self, name: str, reserved_bytes: int,
                resident_bytes: int) -> None:
        if reserved_bytes > self.reserved.get(name, 0):
            raise SchedulingError(
                f"{name}: releasing {reserved_bytes} B, only "
                f"{self.reserved.get(name, 0)} B reserved")
        if resident_bytes > self.resident.get(name, 0):
            raise SchedulingError(
                f"{name}: releasing {resident_bytes} resident B, only "
                f"{self.resident.get(name, 0)} B resident")
        self.reserved[name] -= reserved_bytes
        self.resident[name] -= resident_bytes
        self.released += 1
        self._check()

    # -- invariants -----------------------------------------------------------

    def _check(self) -> None:
        total_reserved = sum(self.reserved.values())
        total_resident = sum(self.resident.values())
        if total_resident > total_reserved:
            raise SchedulingError(
                f"KV ledger: resident {total_resident} B exceeds reserved "
                f"{total_reserved} B")
        if total_reserved > self.capacity.total_bytes:
            raise SchedulingError(
                f"KV ledger: reserved {total_reserved} B exceeds capacity "
                f"{self.capacity.total_bytes} B")

    @property
    def in_flight(self) -> int:
        return self.admitted - self.released

    def utilization(self) -> float:
        return sum(self.reserved.values()) / self.capacity.total_bytes
