"""Request-level vocabulary of the serving layer.

A :class:`Request` is one user call: a prompt of ``prefill_tokens`` to
ingest and ``decode_tokens`` to generate.  It is immutable trace data —
everything the scheduler mutates lives in :class:`RequestState`, so the
same trace can be replayed through any scheduler/policy combination
without copying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SchedulingError

__all__ = ["Request", "RequestState"]


@dataclass(frozen=True)
class Request:
    """One offered request, fixed by the traffic trace."""

    tenant: str
    index: int            # per-tenant sequence number (0-based)
    arrival_cycles: int   # absolute arrival time on the device clock
    prefill_tokens: int
    decode_tokens: int

    def __post_init__(self) -> None:
        if self.arrival_cycles < 0:
            raise SchedulingError(f"{self.key}: negative arrival")
        if self.prefill_tokens < 1 or self.decode_tokens < 1:
            raise SchedulingError(
                f"{self.key}: prefill/decode token counts must be >= 1")

    @property
    def key(self) -> str:
        return f"{self.tenant}/{self.index}"

    @property
    def total_tokens(self) -> int:
        """Peak context length: prompt plus every generated token."""
        return self.prefill_tokens + self.decode_tokens

    def kv_bytes(self, bytes_per_token: int) -> int:
        """Worst-case resident KV footprint at full generation."""
        return self.total_tokens * bytes_per_token


@dataclass
class RequestState:
    """Mutable per-request scheduling state."""

    request: Request
    admitted_cycles: Optional[int] = None
    prefilled: bool = False
    first_token_cycles: Optional[int] = None   # TTFT endpoint
    finish_cycles: Optional[int] = None
    rejected_cycles: Optional[int] = None
    decoded: int = 0
    kv_reserved_bytes: int = 0
    kv_resident_bytes: int = 0

    @property
    def done(self) -> bool:
        return self.finish_cycles is not None

    @property
    def rejected(self) -> bool:
        return self.rejected_cycles is not None

    @property
    def context_tokens(self) -> int:
        """Tokens currently resident in the KV cache."""
        if not self.prefilled:
            return 0
        return self.request.prefill_tokens + self.decoded

    def latency_cycles(self) -> int:
        if self.finish_cycles is None:
            raise SchedulingError(f"{self.request.key}: not finished")
        return self.finish_cycles - self.request.arrival_cycles

    def ttft_cycles(self) -> int:
        if self.first_token_cycles is None:
            raise SchedulingError(f"{self.request.key}: no first token")
        return self.first_token_cycles - self.request.arrival_cycles
