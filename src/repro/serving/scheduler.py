"""Iteration-level serving schedulers over the compiled cost model.

Two batching disciplines over the *same* offered trace:

* **continuous** (Orca-style iteration-level scheduling): admission runs
  at every engine iteration — a request that finishes its generation
  frees its batch slot and KV reservation immediately, and a queued
  request can join mid-flight.  Admission order is the configured policy
  (FCFS or shortest-prefill-first), per-tenant contention is arbitrated
  through the MPAM/QoS machinery (floors, ceilings, priorities), and
  the KV ledger is the hard capacity gate.
* **static** (the classic baseline): requests are admitted only at batch
  boundaries; the whole batch then runs to the *longest* member's
  completion, with every decode step priced at the full admitted batch
  width — finished requests pad the batch, which is exactly the goodput
  loss continuous batching removes.

The simulator is a pure function of (trace, spec, cost model): integer
cycle arithmetic end to end, tenants iterated in sorted order, no
wall-clock — two runs of the same campaign produce byte-identical
reports (``ServeReport.digest()`` pins this in CI).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config.core_configs import CoreConfig
from ..config.soc_configs import SocConfig
from ..dtypes import DType, FP16
from ..errors import ConfigError, SchedulingError
from ..models.gpt import GptConfig
from ..profiling.counters import PerfCounters
from ..profiling.manifest import RunManifest
from .kvcache import KvCapacity, KvLedger
from .metrics import latency_summary
from .request import Request, RequestState
from .settings import (POLICIES, serve_kv_fraction, serve_max_batch,
                       serve_policy)
from .stepcost import StepCostModel
from .traffic import TenantSpec, generate_trace

__all__ = ["ServeSpec", "ServeReport", "simulate_serving", "MODES"]

MODES = ("continuous", "static")


@dataclass(frozen=True)
class ServeSpec:
    """One serving campaign: model x design point x tenants x knobs.

    ``policy`` / ``max_batch`` / ``kv_fraction`` default to the
    ``REPRO_SERVE_*`` environment knobs when left ``None``.
    """

    model: GptConfig
    core: CoreConfig
    soc: SocConfig
    tenants: Tuple[TenantSpec, ...]
    seed: int = 0
    policy: Optional[str] = None
    max_batch: Optional[int] = None
    kv_fraction: Optional[float] = None
    dtype: DType = FP16

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigError("a serving campaign needs at least one tenant")
        if self.policy is not None and self.policy not in POLICIES:
            raise ConfigError(
                f"unknown policy {self.policy!r}; known: {POLICIES}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")

    def resolved(self) -> Tuple[str, int, float]:
        return (
            self.policy if self.policy is not None else serve_policy(),
            self.max_batch if self.max_batch is not None
            else serve_max_batch(),
            self.kv_fraction if self.kv_fraction is not None
            else serve_kv_fraction(),
        )


@dataclass
class ServeReport:
    """Outcome of one campaign, ready for artifacts and CI gates."""

    payload: Dict[str, object]
    counters: Optional[PerfCounters] = None
    manifest: Optional[RunManifest] = None

    def to_dict(self) -> dict:
        out = dict(self.payload)
        if self.counters is not None:
            out["counters"] = self.counters.to_dict()
        if self.manifest is not None:
            out["manifest"] = self.manifest.to_dict()
        return out

    def digest(self) -> str:
        """sha256 over the deterministic metrics payload.

        The manifest (git state, platform, cache hit counts) and the
        counters are provenance, not results — two byte-identical
        campaigns on different machines share a digest.
        """
        canonical = json.dumps(self.payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # Convenience accessors for gates/tests.
    @property
    def aggregate(self) -> dict:
        return self.payload["aggregate"]  # type: ignore[return-value]

    @property
    def tenants(self) -> dict:
        return self.payload["tenants"]  # type: ignore[return-value]

    def goodput_rps(self) -> float:
        return float(self.aggregate["goodput_rps"])


def _policy_key(policy: str):
    if policy == "spf":
        return lambda st: (st.request.prefill_tokens,
                           st.request.arrival_cycles,
                           st.request.tenant, st.request.index)
    return lambda st: (st.request.arrival_cycles, st.request.tenant,
                       st.request.index)


class _Campaign:
    """One simulation run; see :func:`simulate_serving`."""

    def __init__(self, spec: ServeSpec, mode: str, cost_model,
                 trace: Optional[Sequence[Request]]) -> None:
        if mode not in MODES:
            raise ConfigError(f"unknown serving mode {mode!r}; known: {MODES}")
        self.spec = spec
        self.mode = mode
        self.policy, self.max_batch, kv_fraction = spec.resolved()
        self.cost = cost_model if cost_model is not None else StepCostModel(
            spec.model, spec.core, dtype=spec.dtype)
        self.capacity = KvCapacity.for_design_point(
            spec.model, spec.core, spec.soc, kv_fraction, spec.dtype)
        self.ledger = KvLedger(self.capacity, spec.tenants)
        self.trace = list(trace) if trace is not None else generate_trace(
            spec.tenants, spec.seed, spec.core.frequency_hz)
        self.bpt = self.capacity.bytes_per_token
        self.clock = 0
        self.pending: List[RequestState] = []
        self.running: List[RequestState] = []
        self.finished: List[RequestState] = []
        self.rejected: List[RequestState] = []
        self.static_width = 0
        self.iterations = 0
        self.prefill_steps = 0
        self.decode_steps = 0
        self._sort_key = _policy_key(self.policy)
        # The cost model may be shared across campaigns (so continuous
        # and static price from the same compiled buckets); invocation
        # accounting in the report must still be per-campaign.
        self._invocations_baseline = (dict(self.cost.invocations())
                                      if hasattr(self.cost, "invocations")
                                      else {})

    # -- admission ------------------------------------------------------------

    def _qos_budgets(self) -> Optional[Dict[str, float]]:
        """Per-tenant byte budgets for this admission round.

        With two or more tenants contending, the round's budgets come
        from one MPAM arbitration over the KV capacity: floors first,
        then priority-weighted proportional shares up to each ceiling —
        soc.qos semantics, applied to cache bytes instead of DRAM
        bandwidth.  A single demanding tenant needs no arbitration.
        """
        demands: Dict[str, float] = {}
        for st in self.pending:
            need = float(st.request.kv_bytes(self.bpt))
            demands[st.request.tenant] = demands.get(st.request.tenant,
                                                     0.0) + need
        if len(demands) < 2:
            return None
        ordered = {name: demands[name] for name in sorted(demands)}
        return dict(self.ledger.arbiter.arbitrate(ordered).granted)

    def _admit(self) -> None:
        slots = self.max_batch - len(self.running)
        if slots <= 0 or not self.pending:
            return
        self.pending.sort(key=self._sort_key)
        budgets = self._qos_budgets()
        kept: List[RequestState] = []
        for st in self.pending:
            tenant = st.request.tenant
            need = st.request.kv_bytes(self.bpt)
            if slots <= 0:
                kept.append(st)
                continue
            if not self.ledger.feasible_ever(tenant, need):
                # This request can never fit — not even on an idle
                # system inside its tenant's MPAM envelope.
                st.rejected_cycles = self.clock
                self.ledger.note_rejected()
                self.rejected.append(st)
                continue
            over_budget = (budgets is not None
                           and need > budgets.get(tenant, 0.0))
            if not over_budget and self.ledger.try_reserve(tenant, need):
                st.admitted_cycles = self.clock
                st.kv_reserved_bytes = need
                self.running.append(st)
                slots -= 1
                if budgets is not None:
                    budgets[tenant] = budgets.get(tenant, 0.0) - need
            else:
                kept.append(st)
        self.pending = kept
        # Progress guarantee: an idle engine must never spin on QoS
        # round budgets alone — force the head-of-line feasible request
        # through the ledger (which still enforces floors/ceilings).
        if not self.running and self.pending:
            for st in list(self.pending):
                tenant = st.request.tenant
                need = st.request.kv_bytes(self.bpt)
                if self.ledger.try_reserve(tenant, need):
                    st.admitted_cycles = self.clock
                    st.kv_reserved_bytes = need
                    self.running.append(st)
                    self.pending.remove(st)
                    break

    # -- the engine loop ------------------------------------------------------

    def run(self) -> None:
        arrivals = self.trace
        cursor = 0
        offered = len(arrivals)
        guard = 0
        while len(self.finished) + len(self.rejected) < offered:
            guard += 1
            if guard > 100 * offered + 1000:
                raise SchedulingError(
                    "serving simulation failed to make progress "
                    f"({len(self.finished)} done, {len(self.rejected)} "
                    f"rejected of {offered})")
            while (cursor < offered
                   and arrivals[cursor].arrival_cycles <= self.clock):
                self.pending.append(RequestState(arrivals[cursor]))
                cursor += 1
            if not self.running and not self.pending:
                # Idle: jump to the next arrival.
                self.clock = max(self.clock, arrivals[cursor].arrival_cycles)
                continue
            if self.mode == "continuous" or not self.running:
                self._admit()
                if self.mode == "static":
                    self.static_width = len(self.running)
            if not self.running:
                # Everything pending was rejected this round; loop.
                continue
            self._step()

    def _step(self) -> None:
        self.iterations += 1
        prefilling = [st for st in self.running if not st.prefilled]
        decoding = [st for st in self.running if st.prefilled]
        step_cycles = 0
        if prefilling:
            total_tokens = sum(st.request.prefill_tokens for st in prefilling)
            step_cycles += self.cost.prefill_cycles(total_tokens)
            self.prefill_steps += 1
        if decoding:
            width = (self.static_width if self.mode == "static"
                     else len(decoding))
            max_context = max(st.context_tokens for st in decoding)
            step_cycles += self.cost.decode_cycles(max(width, len(decoding)),
                                                   max_context)
            self.decode_steps += 1
        if step_cycles <= 0:
            raise SchedulingError("engine step priced at zero cycles")
        self.clock += step_cycles
        for st in prefilling:
            st.prefilled = True
            grown = st.request.prefill_tokens * self.bpt
            st.kv_resident_bytes += grown
            self.ledger.grow(st.request.tenant, grown)
        still_running: List[RequestState] = []
        for st in self.running:
            if st in prefilling:
                still_running.append(st)
                continue
            st.decoded += 1
            st.kv_resident_bytes += self.bpt
            self.ledger.grow(st.request.tenant, self.bpt)
            if st.decoded == 1:
                st.first_token_cycles = self.clock
            if st.decoded >= st.request.decode_tokens:
                st.finish_cycles = self.clock
                self.ledger.release(st.request.tenant, st.kv_reserved_bytes,
                                    st.kv_resident_bytes)
                self.finished.append(st)
            else:
                still_running.append(st)
        self.running = still_running
        if self.mode == "static" and not self.running:
            self.static_width = 0

    # -- reporting ------------------------------------------------------------

    def report(self, with_manifest: bool = True,
               with_counters: bool = True) -> ServeReport:
        freq = self.spec.core.frequency_hz
        makespan_cycles = self.clock
        makespan_s = makespan_cycles / freq

        def _tenant_block(name: str) -> dict:
            spec = next(t for t in self.spec.tenants if t.name == name)
            done = [st for st in self.finished if st.request.tenant == name]
            rej = [st for st in self.rejected if st.request.tenant == name]
            latencies = [st.latency_cycles() for st in done]
            ttfts = [st.ttft_cycles() for st in done]
            slo = spec.slo_cycles(freq)
            met = sum(1 for lat in latencies if lat <= slo)
            terminal = len(done) + len(rej)
            tokens = sum(st.request.decode_tokens for st in done)
            return {
                "offered": sum(1 for r in self.trace if r.tenant == name),
                "completed": len(done),
                "rejected": len(rej),
                "slo_cycles": slo,
                "slo_met": met,
                "slo_attainment": (met / terminal) if terminal else 0.0,
                "latency": latency_summary(latencies),
                "ttft": latency_summary(ttfts),
                "goodput_rps": met / makespan_s if makespan_s else 0.0,
                "throughput_rps": (len(done) / makespan_s
                                   if makespan_s else 0.0),
                "generated_tokens": tokens,
                "tokens_per_s": tokens / makespan_s if makespan_s else 0.0,
            }

        names = sorted(t.name for t in self.spec.tenants)
        tenants = {name: _tenant_block(name) for name in names}
        all_lat = [st.latency_cycles() for st in self.finished]
        all_ttft = [st.ttft_cycles() for st in self.finished]
        total_met = sum(t["slo_met"] for t in tenants.values())
        total_tokens = sum(t["generated_tokens"] for t in tenants.values())
        terminal = len(self.finished) + len(self.rejected)
        aggregate = {
            "offered": len(self.trace),
            "completed": len(self.finished),
            "rejected": len(self.rejected),
            "slo_met": total_met,
            "slo_attainment": (total_met / terminal) if terminal else 0.0,
            "latency": latency_summary(all_lat),
            "ttft": latency_summary(all_ttft),
            "goodput_rps": total_met / makespan_s if makespan_s else 0.0,
            "throughput_rps": (len(self.finished) / makespan_s
                               if makespan_s else 0.0),
            "generated_tokens": total_tokens,
            "tokens_per_s": total_tokens / makespan_s if makespan_s else 0.0,
        }
        steps = {
            "iterations": self.iterations,
            "prefill_steps": self.prefill_steps,
            "decode_steps": self.decode_steps,
        }
        if hasattr(self.cost, "invocations"):
            baseline = self._invocations_baseline
            used = {label: count - baseline.get(label, 0)
                    for label, count in self.cost.invocations().items()
                    if count - baseline.get(label, 0) > 0}
            steps["distinct_buckets"] = len(used)
            steps["invocations"] = used
        payload: Dict[str, object] = {
            "schema": 1,
            "mode": self.mode,
            "policy": self.policy,
            "seed": self.spec.seed,
            "model": self.spec.model.name,
            "core": self.spec.core.name,
            "soc": self.spec.soc.name,
            "max_batch": self.max_batch,
            "cost_tier": ("predicted"
                          if getattr(self.cost, "use_predictor", False)
                          else "simulated"),
            "makespan_cycles": makespan_cycles,
            "makespan_s": makespan_s,
            "kv": {
                "bytes_per_token": self.capacity.bytes_per_token,
                "onchip_bytes": self.capacity.onchip_bytes,
                "gm_bytes": self.capacity.gm_bytes,
                "weight_bytes": self.capacity.weight_bytes,
                "total_bytes": self.capacity.total_bytes,
                "token_capacity": self.capacity.token_capacity,
                "peak_reserved_bytes": self.ledger.peak_reserved,
                "peak_resident_bytes": self.ledger.peak_resident,
            },
            "steps": steps,
            "tenants": tenants,
            "aggregate": aggregate,
        }
        counters = None
        if with_counters and hasattr(self.cost, "aggregate_counters"):
            if hasattr(self.cost, "invocations"):
                counters = self.cost.aggregate_counters(
                    self._invocations_baseline)
            else:
                counters = self.cost.aggregate_counters()
        manifest = None
        if with_manifest:
            manifest = RunManifest.collect(
                model=self.spec.model.name,
                config=f"{self.spec.core.name}/{self.spec.soc.name}",
                extras={"mode": self.mode, "policy": self.policy,
                        "seed": self.spec.seed,
                        "tenants": names,
                        "offered": len(self.trace)},
            )
        return ServeReport(payload=payload, counters=counters,
                           manifest=manifest)


def simulate_serving(spec: ServeSpec, mode: str = "continuous",
                     cost_model=None,
                     trace: Optional[Sequence[Request]] = None,
                     with_manifest: bool = True,
                     with_counters: bool = True) -> ServeReport:
    """Run one serving campaign and return its report.

    ``cost_model`` defaults to a fresh :class:`StepCostModel` for the
    spec's (model, core); tests inject duck-typed stand-ins, and
    benchmark sweeps share one instance across modes so both schedulers
    price steps from the same compiled buckets.  ``trace`` overrides the
    generated arrival trace (it must be sorted by arrival cycle).
    """
    campaign = _Campaign(spec, mode, cost_model, trace)
    campaign.run()
    return campaign.report(with_manifest=with_manifest,
                           with_counters=with_counters)
