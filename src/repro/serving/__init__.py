"""Request-level LLM serving front-end over the Ascend simulator.

The serving layer turns the per-graph compile/simulate stack into a
*request-level* evaluation: a seeded open-loop traffic generator offers
mixed-length GPT requests from multiple tenants, a continuous-batching
scheduler admits them against the design point's modeled KV-cache
capacity (with per-tenant MPAM floors/ceilings), and every engine step
is priced by the compiled cost of the work actually batched into it.
Reports carry exact order-statistic latency percentiles, goodput, and
SLO attainment — byte-identical across repeated runs of a seed.
"""

from .kvcache import KvCapacity, KvLedger, qos_arbiter_for
from .metrics import exact_percentile, latency_summary
from .request import Request, RequestState
from .scheduler import MODES, ServeReport, ServeSpec, simulate_serving
from .settings import (serve_kv_fraction, serve_max_batch, serve_policy,
                       serve_predict)
from .stepcost import StepCostModel, bucket_pow2
from .traffic import TenantSpec, generate_trace, tenant_key, tenant_trace

__all__ = [
    "KvCapacity", "KvLedger", "qos_arbiter_for",
    "exact_percentile", "latency_summary",
    "Request", "RequestState",
    "MODES", "ServeReport", "ServeSpec", "simulate_serving",
    "serve_kv_fraction", "serve_max_batch", "serve_policy", "serve_predict",
    "StepCostModel", "bucket_pow2",
    "TenantSpec", "generate_trace", "tenant_key", "tenant_trace",
]
