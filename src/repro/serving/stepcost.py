"""Per-engine-step cycle costs from the compile cache (or the predictor).

The serving simulator advances in *iterations*; each iteration's cycle
cost is the compiled cost of the work actually batched into it:

* a **prefill step** of ``T`` total prompt tokens prices as the compiled
  prefill graph at the bucketed sequence length (chunked at the model's
  ``max_context``);
* a **decode step** of ``B`` requests whose longest context is ``C``
  prices as the compiled single-token decode graph at the bucketed
  ``(B, C)``.

Buckets are powers of two, so a million-request campaign touches a few
dozen distinct compiles — each one a content-addressed hit in
:mod:`repro.compiler.cache` after the first — and every priced step is
an exact event-engine number, not an analytic estimate.  Identical
transformer layers inside each graph dedupe structurally, so a bucket
costs roughly one layer compile.

``use_predictor`` (the ``REPRO_SERVE_PREDICT`` knob) swaps the event
engine for the learned cycle predictor
(:mod:`repro.perf.predictor`): same graphs, same feature schema, ~three
orders of magnitude faster per cold bucket — the tier that makes
million-request × many-design-point campaigns tractable.  Predicted
campaigns carry no per-pipe counters (nothing was scheduled), and the
report says so.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, Optional, Tuple

import numpy as np

from ..compiler.graph_engine import CompiledModel, GraphEngine
from ..config.core_configs import CoreConfig
from ..dtypes import DType, FP16
from ..errors import ConfigError
from ..models.gpt import GptConfig, build_gpt, build_gpt_decode
from ..profiling.counters import PerfCounters
from .settings import serve_predict

__all__ = ["StepCostModel", "bucket_pow2"]

_LAYER_FIELDS = (
    "cycles", "cube_cycles", "vector_cycles", "mte1_cycles", "mte2_cycles",
    "mte3_cycles", "l1_read_bytes", "l1_write_bytes", "gm_read_bytes",
    "gm_write_bytes", "instr_count",
)


def bucket_pow2(value: int, minimum: int = 1,
                maximum: Optional[int] = None) -> int:
    """Round ``value`` up to a power of two within [minimum, maximum]."""
    if value < 1:
        raise ConfigError(f"bucket of non-positive value {value}")
    bucket = max(minimum, 1 << (value - 1).bit_length())
    if maximum is not None:
        bucket = min(bucket, maximum)
    return bucket


class StepCostModel:
    """Memoized (phase, batch, context) -> cycles for one design point."""

    # Floor buckets keep the distinct-compile count low without
    # distorting costs: a 3-token prompt and a 16-token prompt genuinely
    # cost the same padded cube tiles.
    MIN_TOKEN_BUCKET = 16
    MIN_BATCH_BUCKET = 1

    def __init__(self, model: GptConfig, core: CoreConfig,
                 use_predictor: Optional[bool] = None,
                 dtype: DType = FP16) -> None:
        self.model = model
        self.core = core
        self.dtype = dtype
        self.engine = GraphEngine(core)
        self.use_predictor = (serve_predict() if use_predictor is None
                              else use_predictor)
        self._predictor = self._load_predictor() if self.use_predictor else None
        # bucket key -> (cycles, compiled model or None under the predictor)
        self._memo: Dict[Tuple[str, int, int],
                         Tuple[int, Optional[CompiledModel]]] = {}
        self._counts: Dict[Tuple[str, int, int], int] = {}

    def _load_predictor(self):
        # Strict by design: REPRO_SERVE_PREDICT=1 with no loadable
        # artifact raises load_artifact's ConfigError (which names the
        # training command) rather than silently falling back to the
        # event engine and reporting numbers from the wrong tier.
        from ..perf.predictor.train import load_artifact

        predictor, _payload = load_artifact()
        return predictor

    # -- pricing --------------------------------------------------------------

    def prefill_cycles(self, tokens: int) -> int:
        """Cycles to ingest ``tokens`` prompt tokens in one step.

        Token totals beyond ``max_context`` price as full-context chunks
        plus one bucketed remainder — the serving analogue of chunked
        prefill.
        """
        if tokens < 1:
            raise ConfigError(f"prefill of {tokens} tokens")
        cap = self.model.max_context
        full, rem = divmod(tokens, cap)
        cycles = full * self._priced("prefill", 1, cap)
        if rem:
            bucket = bucket_pow2(rem, self.MIN_TOKEN_BUCKET, cap)
            cycles += self._priced("prefill", 1, bucket)
        return cycles

    def decode_cycles(self, batch: int, max_context: int) -> int:
        """Cycles for one token across a ``batch`` of decoding requests."""
        if batch < 1:
            raise ConfigError(f"decode batch of {batch}")
        b = bucket_pow2(batch, self.MIN_BATCH_BUCKET)
        c = bucket_pow2(max(1, max_context), self.MIN_TOKEN_BUCKET,
                        self.model.max_context)
        return self._priced("decode", b, c)

    def _priced(self, phase: str, batch: int, tokens: int) -> int:
        key = (phase, batch, tokens)
        hit = self._memo.get(key)
        if hit is None:
            hit = self._compile(phase, batch, tokens)
            self._memo[key] = hit
            self._counts[key] = 0
        self._counts[key] += 1
        return hit[0]

    def _compile(self, phase: str, batch: int,
                 tokens: int) -> Tuple[int, Optional[CompiledModel]]:
        if phase == "prefill":
            graph = build_gpt(self.model, batch=batch, seq=tokens,
                              dtype=self.dtype)
        else:
            graph = build_gpt_decode(self.model, batch=batch,
                                     context=tokens, dtype=self.dtype)
        if self._predictor is not None:
            from ..perf.predictor.features import model_feature_matrix

            features = model_feature_matrix(graph.grouped_workloads(),
                                            self.core)
            cycles = int(np.sum(self._predictor.predict(features)))
            return max(1, cycles), None
        compiled = self.engine.compile_graph(graph)
        return max(1, compiled.total_cycles), compiled

    # -- reporting ------------------------------------------------------------

    @property
    def distinct_buckets(self) -> int:
        return len(self._memo)

    def invocations(self) -> Dict[str, int]:
        """Bucket label -> use count (deterministically ordered)."""
        return {f"{p}_b{b}_t{t}": self._counts[(p, b, t)]
                for p, b, t in sorted(self._counts)}

    def aggregate_counters(
            self, since: Optional[Dict[str, int]] = None) -> PerfCounters:
        """Campaign-wide :class:`PerfCounters`: every priced step's
        compiled per-pipe busy cycles and traffic, scaled by how many
        times its bucket ran.  Predictor-priced buckets contribute only
        total cycles (nothing was scheduled to attribute).

        ``since`` is an earlier :meth:`invocations` snapshot; pass it to
        scope the aggregation to one campaign when the cost model (and
        its compiled buckets) are shared across several."""
        baseline = since or {}
        total = PerfCounters()
        for key in sorted(self._memo):
            cycles, compiled = self._memo[key]
            p, b, t = key
            count = self._counts[key] - baseline.get(f"{p}_b{b}_t{t}", 0)
            if count <= 0:
                continue
            if compiled is None:
                scaled = PerfCounters()
                scaled.total_cycles = cycles * count
                total.add(scaled)
                continue
            for layer in compiled.layers:
                total.add(PerfCounters.from_layer(SimpleNamespace(**{
                    field: getattr(layer, field) * count
                    for field in _LAYER_FIELDS
                })))
        return total
