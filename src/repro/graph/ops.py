"""Op node types of the graph IR and their workload decompositions.

The mapping of ops to execution units follows Table 2: convolution / FC /
matmul run on the cube (after img2col); normalization, activation,
pooling, precision conversion and depthwise convolutions run on the
vector unit.  Depthwise convolution on the vector unit is what gives
MobileNet its sub-1 cube/vector ratios in Figure 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..dtypes import DType, FP16, accumulator_for
from ..errors import GraphError
from .tensor import TensorSpec
from .workload import GemmWork, OpWorkload, VectorWork

__all__ = [
    "Op",
    "Input",
    "Conv2D",
    "DepthwiseConv2D",
    "Dense",
    "BatchMatMul",
    "Activation",
    "BatchNorm",
    "LayerNorm",
    "Softmax",
    "Pool2D",
    "GlobalAvgPool",
    "Add",
    "Embedding",
    "Reshape",
    "Upsample2D",
    "CvOp",
    "CV_OP_PASSES",
    "Quantize",
    "Dequantize",
    "ACTIVATION_PASSES",
]

# Vector datapath passes per activation kind (transcendentals iterate).
ACTIVATION_PASSES: Dict[str, int] = {
    "relu": 1,
    "relu6": 2,
    "gelu": 8,
    "tanh": 6,
    "sigmoid": 6,
    "swish": 7,
}


@dataclass(frozen=True)
class Op:
    """Base graph node.

    Attributes:
        name: unique node name.
        inputs: tensors consumed.
        output: tensor produced (single-output IR; enough for these nets).
        group: layer-group label used by the per-layer profiling figures
            (e.g. every op of a ResNet bottleneck block shares a group).
    """

    name: str
    inputs: Tuple[TensorSpec, ...]
    output: TensorSpec
    group: str = ""

    def workload(self) -> OpWorkload:
        raise NotImplementedError

    @property
    def input_bytes(self) -> int:
        return sum(t.nbytes for t in self.inputs)


@dataclass(frozen=True)
class Input(Op):
    """Graph input placeholder; does no work."""

    def workload(self) -> OpWorkload:
        return OpWorkload(name=self.name, output_bytes=self.output.nbytes)


@dataclass(frozen=True)
class Conv2D(Op):
    """Standard convolution, lowered to GEMM via img2col.

    Input (B, H, W, Cin); weight (KH, KW, Cin, Cout); output
    (B, OH, OW, Cout).  GEMM: m = B*OH*OW, k = KH*KW*Cin, n = Cout.
    """

    kernel: Tuple[int, int] = (1, 1)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    out_channels: int = 0
    bias: bool = True

    def __post_init__(self) -> None:
        if self.out_channels <= 0:
            raise GraphError(f"{self.name}: out_channels must be positive")

    @property
    def in_channels(self) -> int:
        return self.inputs[0].shape[-1]

    @property
    def weight_elems(self) -> int:
        kh, kw = self.kernel
        return kh * kw * self.in_channels * self.out_channels

    def workload(self) -> OpWorkload:
        b, oh, ow, cout = self.output.shape
        kh, kw = self.kernel
        gemm = GemmWork(
            m=b * oh * ow,
            k=kh * kw * self.in_channels,
            n=cout,
            dtype=self.output.dtype,
        )
        vec = []
        if self.bias:
            vec.append(VectorWork(self.output.elems, passes=1, dtype=self.output.dtype))
        return OpWorkload(
            name=self.name,
            gemms=(gemm,),
            vector=tuple(vec),
            weight_bytes=int(self.weight_elems * self.output.dtype.bytes),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class DepthwiseConv2D(Op):
    """Depthwise convolution.

    With one input channel per filter there is no K-dimension reuse, so
    the cube's 16x data amplification cannot apply; Ascend executes these
    on the vector unit (one fused MAC pass per kernel tap).
    """

    kernel: Tuple[int, int] = (3, 3)
    stride: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (1, 1)
    bias: bool = True

    @property
    def channels(self) -> int:
        return self.inputs[0].shape[-1]

    def workload(self) -> OpWorkload:
        kh, kw = self.kernel
        taps = kh * kw
        out_elems = self.output.elems
        vec = [VectorWork(out_elems * taps, passes=1, dtype=self.output.dtype)]
        if self.bias:
            vec.append(VectorWork(out_elems, passes=1, dtype=self.output.dtype))
        return OpWorkload(
            name=self.name,
            vector=tuple(vec),
            weight_bytes=int(taps * self.channels * self.output.dtype.bytes),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Dense(Op):
    """Fully-connected layer: (..., K) @ (K, N) -> (..., N)."""

    units: int = 0
    bias: bool = True

    def __post_init__(self) -> None:
        if self.units <= 0:
            raise GraphError(f"{self.name}: units must be positive")

    @property
    def in_features(self) -> int:
        return self.inputs[0].shape[-1]

    def workload(self) -> OpWorkload:
        rows = self.inputs[0].elems // self.in_features
        gemm = GemmWork(m=rows, k=self.in_features, n=self.units,
                        dtype=self.output.dtype)
        vec = []
        if self.bias:
            vec.append(VectorWork(self.output.elems, passes=1, dtype=self.output.dtype))
        return OpWorkload(
            name=self.name,
            gemms=(gemm,),
            vector=tuple(vec),
            weight_bytes=int(self.in_features * self.units * self.output.dtype.bytes),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class BatchMatMul(Op):
    """Batched matmul, e.g. attention scores/context: (..., M, K) @ (..., K, N)."""

    transpose_b: bool = False

    def workload(self) -> OpWorkload:
        a, b = self.inputs
        m, k = a.shape[-2], a.shape[-1]
        n = b.shape[-2] if self.transpose_b else b.shape[-1]
        count = math.prod(a.shape[:-2]) if a.rank > 2 else 1
        gemm = GemmWork(m=m, k=k, n=n, dtype=self.output.dtype, count=count)
        return OpWorkload(
            name=self.name,
            gemms=(gemm,),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Activation(Op):
    """Elementwise nonlinearity on the vector unit."""

    kind: str = "relu"

    def __post_init__(self) -> None:
        if self.kind not in ACTIVATION_PASSES:
            raise GraphError(
                f"{self.name}: unknown activation {self.kind!r}; "
                f"known: {sorted(ACTIVATION_PASSES)}"
            )

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, ACTIVATION_PASSES[self.kind],
                               self.output.dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class BatchNorm(Op):
    """Batch normalization.

    Inference folds to scale+shift (2 passes).  Training computes batch
    statistics (2 reduction passes) before normalizing (4 passes total).
    """

    training: bool = False

    def workload(self) -> OpWorkload:
        passes = 6 if self.training else 2
        channels = self.output.shape[-1]
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, passes, self.output.dtype),),
            weight_bytes=int(4 * channels * self.output.dtype.bytes),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class LayerNorm(Op):
    """Layer normalization over the last axis (~8 vector passes:
    mean, variance, rsqrt, normalize, scale, shift)."""

    def workload(self) -> OpWorkload:
        features = self.output.shape[-1]
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, 8, self.output.dtype),),
            weight_bytes=int(2 * features * self.output.dtype.bytes),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Softmax(Op):
    """Row softmax (~10 vector passes: max, sub, exp, sum, div)."""

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, 10, self.output.dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Pool2D(Op):
    """Max/avg pooling: one compare/add pass per kernel tap."""

    kernel: Tuple[int, int] = (2, 2)
    stride: Tuple[int, int] = (2, 2)
    padding: Tuple[int, int] = (0, 0)
    mode: str = "max"

    def __post_init__(self) -> None:
        if self.mode not in ("max", "avg"):
            raise GraphError(f"{self.name}: pool mode must be max/avg")

    def workload(self) -> OpWorkload:
        kh, kw = self.kernel
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems * kh * kw, 1, self.output.dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class GlobalAvgPool(Op):
    """Spatial mean: one reduction pass over the input."""

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.inputs[0].elems, 1, self.output.dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Add(Op):
    """Elementwise add (residual connections)."""

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, 1, self.output.dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Embedding(Op):
    """Table lookup: ids (B, S) -> vectors (B, S, D); gather + copy."""

    vocab_size: int = 0
    dim: int = 0

    def __post_init__(self) -> None:
        if self.vocab_size <= 0 or self.dim <= 0:
            raise GraphError(f"{self.name}: vocab_size and dim must be positive")

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, 1, self.output.dtype),),
            weight_bytes=int(self.vocab_size * self.dim * self.output.dtype.bytes),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Upsample2D(Op):
    """Nearest-neighbour spatial upsampling (FPN top-down path): one
    vector pass over the output."""

    factor: int = 2

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise GraphError(f"{self.name}: factor must be positive")

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, 1, self.output.dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


# Vector-unit CV operators (Table 2 lists "CV Operators (RPN, etc.)";
# Section 3.3 adds sorting/clustering/stereo for SLAM).  Passes reflect
# the iterative nature of each kernel on the vector datapath.
CV_OP_PASSES: Dict[str, int] = {
    "rpn_proposal": 6,  # score transform + box decode
    "nms": 12,  # sort + pairwise IoU suppression
    "roi_align": 8,  # bilinear sampling per bin
    "anchor_gen": 2,
    "xcorr": 4,  # depthwise cross-correlation (Siamese tracking)
}


@dataclass(frozen=True)
class CvOp(Op):
    """A computer-vision operator executed on the vector unit."""

    kind: str = "rpn_proposal"

    def __post_init__(self) -> None:
        if self.kind not in CV_OP_PASSES:
            raise GraphError(
                f"{self.name}: unknown CV op {self.kind!r}; "
                f"known: {sorted(CV_OP_PASSES)}"
            )

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, CV_OP_PASSES[self.kind],
                               self.output.dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Reshape(Op):
    """Layout change (head split/merge).  Real kernels fold this into the
    neighbouring op's addressing; recorded as a 1-pass copy to stay
    conservative about UB traffic."""

    def __post_init__(self) -> None:
        if self.inputs[0].elems != self.output.elems:
            raise GraphError(
                f"{self.name}: reshape element mismatch "
                f"{self.inputs[0].shape} -> {self.output.shape}"
            )

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, 1, self.output.dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Quantize(Op):
    """fp -> int precision conversion on the vector unit (Section 2.2)."""

    scale: float = 1.0

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, 2, self.inputs[0].dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )


@dataclass(frozen=True)
class Dequantize(Op):
    """int -> fp precision conversion on the vector unit."""

    scale: float = 1.0

    def workload(self) -> OpWorkload:
        return OpWorkload(
            name=self.name,
            vector=(VectorWork(self.output.elems, 2, self.output.dtype),),
            input_bytes=self.input_bytes,
            output_bytes=self.output.nbytes,
        )
