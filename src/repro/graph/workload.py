"""Per-op workload descriptors — the currency of all performance analysis.

An :class:`OpWorkload` decomposes one op into

* **cube work**: a list of GEMMs (the only thing the cube executes,
  Table 2: convolution / FC / matmul, all via img2col);
* **vector work**: element-passes on the vector unit (normalization,
  activation, format/precision conversion, reductions);
* **bytes**: weight/input/output footprints for bandwidth accounting.

These descriptors feed the compiler's lowering, the Figures 4-8 ratio
profiles, and the Figure 9 bandwidth profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..dtypes import DType, FP16
from ..errors import GraphError

__all__ = ["GemmWork", "VectorWork", "OpWorkload"]


@dataclass(frozen=True)
class GemmWork:
    """``count`` identical M x K x N GEMMs with a given source dtype."""

    m: int
    k: int
    n: int
    dtype: DType = FP16
    count: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n, self.count) <= 0:
            raise GraphError(f"bad GEMM work {self}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n * self.count

    @property
    def a_bytes(self) -> int:
        return int(self.m * self.k * self.dtype.bytes) * self.count

    @property
    def b_bytes(self) -> int:
        return int(self.k * self.n * self.dtype.bytes) * self.count

    @property
    def c_elems(self) -> int:
        return self.m * self.n * self.count


@dataclass(frozen=True)
class VectorWork:
    """``elems`` elements through the vector datapath, ``passes`` times."""

    elems: int
    passes: int = 1
    dtype: DType = FP16

    def __post_init__(self) -> None:
        if self.elems < 0 or self.passes <= 0:
            raise GraphError(f"bad vector work {self}")

    @property
    def elem_passes(self) -> int:
        return self.elems * self.passes

    @property
    def bytes_processed(self) -> int:
        return int(self.elem_passes * self.dtype.bytes)


@dataclass(frozen=True)
class OpWorkload:
    """Everything the performance model needs to know about one op."""

    name: str
    gemms: Tuple[GemmWork, ...] = ()
    vector: Tuple[VectorWork, ...] = ()
    weight_bytes: int = 0
    input_bytes: int = 0
    output_bytes: int = 0

    @property
    def macs(self) -> int:
        return sum(g.macs for g in self.gemms)

    @property
    def vector_elem_passes(self) -> int:
        return sum(v.elem_passes for v in self.vector)

    @property
    def is_cube_heavy(self) -> bool:
        return self.macs > 0

    def merged(self, other: "OpWorkload", name: str) -> "OpWorkload":
        """Fuse two workloads (e.g. conv + folded BN + activation)."""
        return OpWorkload(
            name=name,
            gemms=self.gemms + other.gemms,
            vector=self.vector + other.vector,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            input_bytes=self.input_bytes,
            output_bytes=other.output_bytes or self.output_bytes,
        )
