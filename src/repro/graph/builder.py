"""Fluent builder for graphs, with shape inference.

The model zoo uses this exclusively; see ``repro.models`` for idiomatic
usage.  Every method returns the produced :class:`TensorSpec`, so layers
chain naturally.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..dtypes import DType, FP16, INT32
from ..errors import GraphError
from .graph import Graph
from .ops import (
    Activation,
    Add,
    BatchMatMul,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dequantize,
    Embedding,
    GlobalAvgPool,
    Input,
    LayerNorm,
    Pool2D,
    Quantize,
    Softmax,
)
from .tensor import TensorSpec

__all__ = ["GraphBuilder"]


def _conv_out(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise GraphError(
            f"convolution output collapses: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


class GraphBuilder:
    """Constructs a :class:`Graph` with automatic naming and group tags."""

    def __init__(self, name: str, dtype: DType = FP16) -> None:
        self.graph = Graph(name=name)
        self.dtype = dtype
        self._counter = 0
        self._group = ""

    def _auto(self, kind: str) -> str:
        self._counter += 1
        return f"{kind}_{self._counter}"

    def group(self, label: str) -> "GraphBuilder":
        """Set the layer-group tag applied to subsequently added nodes."""
        self._group = label
        return self

    # -- node constructors ----------------------------------------------------

    def input(self, name: str, shape: Tuple[int, ...],
              dtype: Optional[DType] = None) -> TensorSpec:
        dtype = dtype or self.dtype
        spec = TensorSpec(name, shape, dtype)
        self.graph.add(Input(name=f"input_{name}", inputs=(), output=spec,
                             group=self._group))
        return spec

    def conv2d(self, x: TensorSpec, out_channels: int, kernel, stride=(1, 1),
               padding=(0, 0), bias: bool = True,
               name: Optional[str] = None) -> TensorSpec:
        kernel, stride, padding = _pair(kernel), _pair(stride), _pair(padding)
        b, h, w, _ = _expect_rank(x, 4)
        oh = _conv_out(h, kernel[0], stride[0], padding[0])
        ow = _conv_out(w, kernel[1], stride[1], padding[1])
        name = name or self._auto("conv")
        out = TensorSpec(f"{name}_out", (b, oh, ow, out_channels), x.dtype)
        self.graph.add(Conv2D(
            name=name, inputs=(x,), output=out, group=self._group,
            kernel=kernel, stride=stride, padding=padding,
            out_channels=out_channels, bias=bias,
        ))
        return out

    def depthwise_conv2d(self, x: TensorSpec, kernel, stride=(1, 1),
                         padding=(1, 1), bias: bool = True,
                         name: Optional[str] = None) -> TensorSpec:
        kernel, stride, padding = _pair(kernel), _pair(stride), _pair(padding)
        b, h, w, c = _expect_rank(x, 4)
        oh = _conv_out(h, kernel[0], stride[0], padding[0])
        ow = _conv_out(w, kernel[1], stride[1], padding[1])
        name = name or self._auto("dwconv")
        out = TensorSpec(f"{name}_out", (b, oh, ow, c), x.dtype)
        self.graph.add(DepthwiseConv2D(
            name=name, inputs=(x,), output=out, group=self._group,
            kernel=kernel, stride=stride, padding=padding, bias=bias,
        ))
        return out

    def dense(self, x: TensorSpec, units: int, bias: bool = True,
              name: Optional[str] = None) -> TensorSpec:
        name = name or self._auto("dense")
        out = TensorSpec(f"{name}_out", x.shape[:-1] + (units,), x.dtype)
        self.graph.add(Dense(name=name, inputs=(x,), output=out,
                             group=self._group, units=units, bias=bias))
        return out

    def batch_matmul(self, a: TensorSpec, b: TensorSpec,
                     transpose_b: bool = False,
                     name: Optional[str] = None) -> TensorSpec:
        if a.rank < 2 or b.rank < 2:
            raise GraphError("batch_matmul operands must be at least 2-D")
        k_a = a.shape[-1]
        k_b = b.shape[-1] if transpose_b else b.shape[-2]
        if k_a != k_b:
            raise GraphError(
                f"batch_matmul contraction mismatch: {a.shape} vs {b.shape} "
                f"(transpose_b={transpose_b})"
            )
        n = b.shape[-2] if transpose_b else b.shape[-1]
        name = name or self._auto("bmm")
        out = TensorSpec(f"{name}_out", a.shape[:-1] + (n,), a.dtype)
        self.graph.add(BatchMatMul(name=name, inputs=(a, b), output=out,
                                   group=self._group, transpose_b=transpose_b))
        return out

    def activation(self, x: TensorSpec, kind: str,
                   name: Optional[str] = None) -> TensorSpec:
        name = name or self._auto(kind)
        out = TensorSpec(f"{name}_out", x.shape, x.dtype)
        self.graph.add(Activation(name=name, inputs=(x,), output=out,
                                  group=self._group, kind=kind))
        return out

    def relu(self, x: TensorSpec) -> TensorSpec:
        return self.activation(x, "relu")

    def batch_norm(self, x: TensorSpec, training: bool = False,
                   name: Optional[str] = None) -> TensorSpec:
        name = name or self._auto("bn")
        out = TensorSpec(f"{name}_out", x.shape, x.dtype)
        self.graph.add(BatchNorm(name=name, inputs=(x,), output=out,
                                 group=self._group, training=training))
        return out

    def layer_norm(self, x: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        name = name or self._auto("ln")
        out = TensorSpec(f"{name}_out", x.shape, x.dtype)
        self.graph.add(LayerNorm(name=name, inputs=(x,), output=out,
                                 group=self._group))
        return out

    def softmax(self, x: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        name = name or self._auto("softmax")
        out = TensorSpec(f"{name}_out", x.shape, x.dtype)
        self.graph.add(Softmax(name=name, inputs=(x,), output=out,
                               group=self._group))
        return out

    def pool2d(self, x: TensorSpec, kernel, stride=None, padding=(0, 0),
               mode: str = "max", name: Optional[str] = None) -> TensorSpec:
        kernel = _pair(kernel)
        stride = _pair(stride) if stride is not None else kernel
        padding = _pair(padding)
        b, h, w, c = _expect_rank(x, 4)
        oh = _conv_out(h, kernel[0], stride[0], padding[0])
        ow = _conv_out(w, kernel[1], stride[1], padding[1])
        name = name or self._auto("pool")
        out = TensorSpec(f"{name}_out", (b, oh, ow, c), x.dtype)
        self.graph.add(Pool2D(name=name, inputs=(x,), output=out,
                              group=self._group, kernel=kernel, stride=stride,
                              padding=padding, mode=mode))
        return out

    def global_avg_pool(self, x: TensorSpec,
                        name: Optional[str] = None) -> TensorSpec:
        b, _, _, c = _expect_rank(x, 4)
        name = name or self._auto("gap")
        out = TensorSpec(f"{name}_out", (b, c), x.dtype)
        self.graph.add(GlobalAvgPool(name=name, inputs=(x,), output=out,
                                     group=self._group))
        return out

    def add(self, a: TensorSpec, b: TensorSpec,
            name: Optional[str] = None) -> TensorSpec:
        if a.shape != b.shape:
            raise GraphError(f"add shape mismatch: {a.shape} vs {b.shape}")
        name = name or self._auto("add")
        out = TensorSpec(f"{name}_out", a.shape, a.dtype)
        self.graph.add(Add(name=name, inputs=(a, b), output=out,
                           group=self._group))
        return out

    def embedding(self, ids: TensorSpec, vocab_size: int, dim: int,
                  name: Optional[str] = None) -> TensorSpec:
        name = name or self._auto("embed")
        out = TensorSpec(f"{name}_out", ids.shape + (dim,), self.dtype)
        self.graph.add(Embedding(name=name, inputs=(ids,), output=out,
                                 group=self._group, vocab_size=vocab_size,
                                 dim=dim))
        return out

    def quantize(self, x: TensorSpec, dtype: DType, scale: float = 1.0,
                 name: Optional[str] = None) -> TensorSpec:
        name = name or self._auto("quant")
        out = TensorSpec(f"{name}_out", x.shape, dtype)
        self.graph.add(Quantize(name=name, inputs=(x,), output=out,
                                group=self._group, scale=scale))
        return out

    def dequantize(self, x: TensorSpec, dtype: DType = FP16, scale: float = 1.0,
                   name: Optional[str] = None) -> TensorSpec:
        name = name or self._auto("dequant")
        out = TensorSpec(f"{name}_out", x.shape, dtype)
        self.graph.add(Dequantize(name=name, inputs=(x,), output=out,
                                  group=self._group, scale=scale))
        return out

    def build(self) -> Graph:
        if not self.graph.nodes:
            raise GraphError("graph is empty")
        return self.graph


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    pair = tuple(value)
    if len(pair) != 2:
        raise GraphError(f"expected an int or pair, got {value!r}")
    return pair  # type: ignore[return-value]


def _expect_rank(x: TensorSpec, rank: int) -> Tuple[int, ...]:
    if x.rank != rank:
        raise GraphError(f"tensor {x.name!r} must be rank {rank}, got {x.rank}")
    return x.shape
