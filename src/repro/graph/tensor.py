"""Tensor metadata flowing through the graph IR."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..dtypes import DType
from ..errors import GraphError

__all__ = ["TensorSpec"]


@dataclass(frozen=True)
class TensorSpec:
    """Shape/dtype metadata of one tensor (no values — the IR is symbolic).

    Activation layout convention is NHWC for images and (batch, seq,
    features) for sequences, matching the im2col-based lowering.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DType

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("tensor needs a name")
        if not self.shape:
            raise GraphError(f"tensor {self.name!r} needs a shape")
        for dim in self.shape:
            if dim <= 0:
                raise GraphError(f"tensor {self.name!r} has bad shape {self.shape}")

    @property
    def elems(self) -> int:
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        return math.ceil(self.elems * self.dtype.bits / 8)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def with_name(self, name: str) -> "TensorSpec":
        return TensorSpec(name, self.shape, self.dtype)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape)
        return f"{self.name}:{dims}:{self.dtype}"
