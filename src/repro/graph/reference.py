"""Reference backend: numpy execution of whole model graphs.

Every op of the IR has exact reference semantics here, so the model zoo
*runs*, not just profiles.  The backend owns randomly-initialized (or
user-provided) parameters per node and evaluates the graph in topological
order.  Tests use it two ways:

* end-to-end sanity of the zoo models (shapes, finiteness, softmax sums);
* as the golden model for the accelerated kernels — a Conv2D node's
  reference output must match :func:`repro.compiler.op_library.conv2d_op`
  running on the simulated core.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..errors import GraphError
from .graph import Graph
from .ops import (
    Activation,
    Add,
    BatchMatMul,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dequantize,
    Embedding,
    GlobalAvgPool,
    Input,
    LayerNorm,
    Op,
    Pool2D,
    Quantize,
    Reshape,
    Softmax,
    Upsample2D,
)

__all__ = ["ReferenceBackend"]


def _im2col_batch(x: np.ndarray, kernel, stride, padding) -> np.ndarray:
    """(B, H, W, C) -> (B, OH*OW, KH*KW*C), matching the MTE img2col."""
    from ..core.mte import im2col_array

    return np.stack([im2col_array(img, kernel, stride, padding) for img in x])


def _activation(x: np.ndarray, kind: str) -> np.ndarray:
    if kind == "relu":
        return np.maximum(x, 0.0)
    if kind == "relu6":
        return np.clip(x, 0.0, 6.0)
    if kind == "gelu":
        return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi)
                                        * (x + 0.044715 * x ** 3)))
    if kind == "tanh":
        return np.tanh(x)
    if kind == "sigmoid":
        return 1.0 / (1.0 + np.exp(-x))
    if kind == "swish":
        return x / (1.0 + np.exp(-x))
    raise GraphError(f"no reference semantics for activation {kind!r}")


def _pool(x: np.ndarray, kernel, stride, padding, mode: str) -> np.ndarray:
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    fill = -np.inf if mode == "max" else 0.0
    padded = np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)),
                    constant_values=fill)
    b, h, w, c = padded.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    out = np.empty((b, oh, ow, c), dtype=np.float32)
    for i in range(oh):
        for j in range(ow):
            window = padded[:, i * sh:i * sh + kh, j * sw:j * sw + kw, :]
            if mode == "max":
                out[:, i, j, :] = window.max(axis=(1, 2))
            else:
                out[:, i, j, :] = window.mean(axis=(1, 2))
    return out


class ReferenceBackend:
    """Executes a graph with numpy semantics and owned parameters."""

    def __init__(self, graph: Graph, seed: int = 0,
                 params: Optional[Dict[str, Dict[str, np.ndarray]]] = None
                 ) -> None:
        self.graph = graph
        self.params: Dict[str, Dict[str, np.ndarray]] = params or {}
        self._rng = np.random.default_rng(seed)
        for op in graph:
            if op.name not in self.params:
                made = self._init_params(op)
                if made:
                    self.params[op.name] = made

    # -- parameter initialization ------------------------------------------------

    def _init_params(self, op: Op) -> Dict[str, np.ndarray]:
        rng = self._rng

        def glorot(*shape):
            fan = sum(shape[-2:]) if len(shape) >= 2 else shape[0]
            return rng.standard_normal(shape).astype(np.float32) \
                * math.sqrt(2.0 / fan)

        if isinstance(op, Conv2D):
            kh, kw = op.kernel
            made = {"weight": glorot(kh, kw, op.in_channels, op.out_channels)}
            if op.bias:
                made["bias"] = np.zeros(op.out_channels, np.float32)
            return made
        if isinstance(op, DepthwiseConv2D):
            kh, kw = op.kernel
            made = {"weight": glorot(kh, kw, op.channels)}
            if op.bias:
                made["bias"] = np.zeros(op.channels, np.float32)
            return made
        if isinstance(op, Dense):
            made = {"weight": glorot(op.in_features, op.units)}
            if op.bias:
                made["bias"] = np.zeros(op.units, np.float32)
            return made
        if isinstance(op, BatchNorm):
            c = op.output.shape[-1]
            return {
                "gamma": np.ones(c, np.float32),
                "beta": np.zeros(c, np.float32),
                "mean": np.zeros(c, np.float32),
                "var": np.ones(c, np.float32),
            }
        if isinstance(op, LayerNorm):
            d = op.output.shape[-1]
            return {"gamma": np.ones(d, np.float32),
                    "beta": np.zeros(d, np.float32)}
        if isinstance(op, Embedding):
            return {"table": 0.02 * self._rng.standard_normal(
                (op.vocab_size, op.dim)).astype(np.float32)}
        return {}

    # -- evaluation ----------------------------------------------------------------

    def run(self, feeds: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Evaluate all nodes; returns every produced tensor by name."""
        values: Dict[str, np.ndarray] = {}
        for op in self.graph:
            if isinstance(op, Input):
                name = op.output.name
                if name not in feeds:
                    raise GraphError(f"missing feed for input {name!r}")
                fed = np.asarray(feeds[name])
                if fed.shape != op.output.shape:
                    raise GraphError(
                        f"feed {name!r} has shape {fed.shape}, expected "
                        f"{op.output.shape}")
                values[name] = fed
                continue
            srcs = [values[t.name] for t in op.inputs]
            values[op.output.name] = self._eval(op, srcs)
        return values

    def outputs(self, feeds: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Evaluate and return only the graph's unconsumed outputs."""
        values = self.run(feeds)
        return {t.name: values[t.name] for t in self.graph.outputs}

    def eval_op(self, op: Op, srcs) -> np.ndarray:
        """Public single-op evaluation (used by the runtime's fallback)."""
        return self._eval(op, srcs)

    def _eval(self, op: Op, srcs) -> np.ndarray:
        p = self.params.get(op.name, {})
        if isinstance(op, Conv2D):
            x = srcs[0].astype(np.float32)
            cols = _im2col_batch(x, op.kernel, op.stride, op.padding)
            kh, kw = op.kernel
            w = p["weight"].reshape(kh * kw * op.in_channels, op.out_channels)
            out = cols @ w
            if op.bias:
                out = out + p["bias"]
            b, oh, ow, c = op.output.shape
            return out.reshape(b, oh, ow, c)
        if isinstance(op, DepthwiseConv2D):
            x = srcs[0].astype(np.float32)
            kh, kw = op.kernel
            sh, sw = op.stride
            ph, pw = op.padding
            padded = np.pad(x, ((0, 0), (ph, ph), (pw, pw), (0, 0)))
            b, oh, ow, c = op.output.shape
            out = np.zeros((b, oh, ow, c), np.float32)
            for di in range(kh):
                for dj in range(kw):
                    window = padded[:, di:di + oh * sh:sh,
                                    dj:dj + ow * sw:sw, :]
                    out += window * p["weight"][di, dj]
            if op.bias:
                out += p["bias"]
            return out
        if isinstance(op, Dense):
            x = srcs[0].astype(np.float32)
            out = x @ p["weight"]
            if op.bias:
                out = out + p["bias"]
            return out
        if isinstance(op, BatchMatMul):
            a, b = (s.astype(np.float32) for s in srcs)
            if op.transpose_b:
                b = np.swapaxes(b, -1, -2)
            return a @ b
        if isinstance(op, Activation):
            return _activation(srcs[0].astype(np.float32), op.kind)
        if isinstance(op, BatchNorm):
            x = srcs[0].astype(np.float32)
            if op.training:
                axes = tuple(range(x.ndim - 1))
                mean, var = x.mean(axis=axes), x.var(axis=axes)
            else:
                mean, var = p["mean"], p["var"]
            return p["gamma"] * (x - mean) / np.sqrt(var + 1e-5) + p["beta"]
        if isinstance(op, LayerNorm):
            x = srcs[0].astype(np.float32)
            mean = x.mean(axis=-1, keepdims=True)
            var = x.var(axis=-1, keepdims=True)
            return p["gamma"] * (x - mean) / np.sqrt(var + 1e-5) + p["beta"]
        if isinstance(op, Softmax):
            x = srcs[0].astype(np.float32)
            shifted = x - x.max(axis=-1, keepdims=True)
            e = np.exp(shifted)
            return e / e.sum(axis=-1, keepdims=True)
        if isinstance(op, Pool2D):
            return _pool(srcs[0].astype(np.float32), op.kernel, op.stride,
                         op.padding, op.mode)
        if isinstance(op, GlobalAvgPool):
            return srcs[0].astype(np.float32).mean(axis=(1, 2))
        if isinstance(op, Add):
            return srcs[0].astype(np.float32) + srcs[1].astype(np.float32)
        if isinstance(op, Embedding):
            ids = srcs[0].astype(np.int64)
            if ids.min() < 0 or ids.max() >= op.vocab_size:
                raise GraphError(f"{op.name}: embedding ids out of range")
            return p["table"][ids]
        if isinstance(op, Reshape):
            return srcs[0].reshape(op.output.shape)
        if isinstance(op, Upsample2D):
            x = srcs[0]
            return x.repeat(op.factor, axis=1).repeat(op.factor, axis=2)
        if isinstance(op, Quantize):
            from ..dtypes import quantize

            return quantize(srcs[0], op.output.dtype, op.scale).astype(
                np.float32)
        if isinstance(op, Dequantize):
            return srcs[0].astype(np.float32) * op.scale
        raise GraphError(f"no reference semantics for {type(op).__name__}")
