"""The DAG container for DNN models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import GraphError
from .ops import Input, Op
from .tensor import TensorSpec
from .workload import OpWorkload

__all__ = ["Graph"]


@dataclass
class Graph:
    """An ordered DAG of ops.

    Nodes are stored in a valid topological order (the builder appends
    producers before consumers, and :meth:`add` enforces it), so iteration
    order is execution order.
    """

    name: str = "graph"
    nodes: List[Op] = field(default_factory=list)
    _tensors: Dict[str, TensorSpec] = field(default_factory=dict)
    _producers: Dict[str, str] = field(default_factory=dict)

    def add(self, op: Op) -> TensorSpec:
        """Append a node; inputs must already be produced in this graph."""
        if any(n.name == op.name for n in self.nodes):
            raise GraphError(f"duplicate node name {op.name!r}")
        if not isinstance(op, Input):
            for tensor in op.inputs:
                if tensor.name not in self._tensors:
                    raise GraphError(
                        f"node {op.name!r} consumes unknown tensor {tensor.name!r}"
                    )
        if op.output.name in self._tensors:
            raise GraphError(f"tensor {op.output.name!r} produced twice")
        self.nodes.append(op)
        self._tensors[op.output.name] = op.output
        self._producers[op.output.name] = op.name
        return op.output

    # -- queries --------------------------------------------------------------

    def __iter__(self) -> Iterator[Op]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, name: str) -> Op:
        for op in self.nodes:
            if op.name == name:
                return op
        raise GraphError(f"no node named {name!r} in graph {self.name!r}")

    def tensor(self, name: str) -> TensorSpec:
        try:
            return self._tensors[name]
        except KeyError:
            raise GraphError(f"no tensor named {name!r}") from None

    @property
    def inputs(self) -> List[Op]:
        return [op for op in self.nodes if isinstance(op, Input)]

    @property
    def outputs(self) -> List[TensorSpec]:
        """Tensors nothing consumes — the graph's results."""
        consumed = {t.name for op in self.nodes for t in op.inputs}
        return [op.output for op in self.nodes if op.output.name not in consumed]

    # -- workload analysis ----------------------------------------------------

    def workloads(self) -> List[Tuple[Op, OpWorkload]]:
        """Per-node workload descriptors, in execution order."""
        return [(op, op.workload()) for op in self.nodes]

    def grouped_workloads(self) -> List[Tuple[str, OpWorkload]]:
        """Workloads merged by layer group, preserving first-seen order.

        This is the granularity at which the paper's Figures 4-8 plot:
        one point per network *layer*, each layer covering its matmul and
        the surrounding vector ops.
        """
        order: List[str] = []
        merged: Dict[str, OpWorkload] = {}
        for op in self.nodes:
            if isinstance(op, Input):
                continue
            group = op.group or op.name
            work = op.workload()
            if group in merged:
                merged[group] = merged[group].merged(work, name=group)
            else:
                order.append(group)
                merged[group] = OpWorkload(
                    name=group,
                    gemms=work.gemms,
                    vector=work.vector,
                    weight_bytes=work.weight_bytes,
                    input_bytes=work.input_bytes,
                    output_bytes=work.output_bytes,
                )
        return [(g, merged[g]) for g in order]

    def total_macs(self) -> int:
        return sum(w.macs for _, w in self.workloads())

    def total_weight_bytes(self) -> int:
        return sum(w.weight_bytes for _, w in self.workloads())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph({self.name!r}, {len(self.nodes)} nodes)"
