"""Graph IR: the "Graph" representation of Section 5.1.

DNN models are DAGs of typed ops over :class:`TensorSpec` values.  Every
op can report its :class:`OpWorkload` — cube GEMMs, vector element-passes
and byte footprints — which drives both the compiler and the paper's
per-layer profiling figures.
"""

from .tensor import TensorSpec
from .workload import GemmWork, VectorWork, OpWorkload
from .ops import (
    Op,
    Input,
    Conv2D,
    DepthwiseConv2D,
    Dense,
    BatchMatMul,
    Activation,
    BatchNorm,
    LayerNorm,
    Softmax,
    Pool2D,
    GlobalAvgPool,
    Add,
    Embedding,
    Quantize,
    Dequantize,
)
from .graph import Graph
from .builder import GraphBuilder
from .reference import ReferenceBackend

__all__ = [
    "TensorSpec",
    "GemmWork",
    "VectorWork",
    "OpWorkload",
    "Op",
    "Input",
    "Conv2D",
    "DepthwiseConv2D",
    "Dense",
    "BatchMatMul",
    "Activation",
    "BatchNorm",
    "LayerNorm",
    "Softmax",
    "Pool2D",
    "GlobalAvgPool",
    "Add",
    "Embedding",
    "Quantize",
    "Dequantize",
    "Graph",
    "GraphBuilder",
    "ReferenceBackend",
]
