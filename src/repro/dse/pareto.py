"""Pareto dominance over (cycles, area, power) — all minimized.

Pure, deterministic set operations: no randomness, no tolerance fuzz.
Equal objective vectors never dominate each other, so exact ties — e.g.
two candidates differing only in a capacity knob the workload never
fills — survive side by side and are grouped into one frontier entry.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["pareto_indices", "frontier_groups"]


def pareto_indices(objectives: Sequence[Sequence[float]]) -> List[int]:
    """Indices of the non-dominated points, ascending.

    A point is dominated iff some other point is <= on every axis and
    < on at least one.  O(n^2) with a vectorized inner sweep — fine for
    the archive sizes a predictor-gated search accumulates.
    """
    pts = np.asarray(objectives, dtype=np.float64)
    if pts.size == 0:
        return []
    if pts.ndim != 2:
        raise ValueError("objectives must be an (n, d) array")
    keep: List[int] = []
    for i in range(pts.shape[0]):
        dominated = np.any(np.all(pts <= pts[i], axis=1)
                           & np.any(pts < pts[i], axis=1))
        if not dominated:
            keep.append(i)
    return keep


def frontier_groups(keys: Sequence[str],
                    objectives: Sequence[Sequence[float]]
                    ) -> List[Tuple[Tuple[float, ...], List[str]]]:
    """The frontier as ``(objective vector, sorted member keys)`` rows.

    Rows are sorted by objective vector, members by key, so the same
    archive always renders the same frontier — the byte-identity anchor
    for the exported artifact.
    """
    front = pareto_indices(objectives)
    grouped: Dict[Tuple[float, ...], List[str]] = {}
    for i in front:
        vec = tuple(float(v) for v in objectives[i])
        grouped.setdefault(vec, []).append(keys[i])
    return [(vec, sorted(members))
            for vec, members in sorted(grouped.items())]
