"""Strict ``REPRO_DSE_*`` environment knobs for the search engine.

Same contract as the predictor/sweep knobs: unset or empty means the
default, anything else must parse exactly or the run dies with a
:class:`~repro.errors.ConfigError` naming the variable.  ``REPRO_DSE_KILL_AT``
is a fault-injection knob for the resume test suite: the engine calls
``os._exit(137)`` mid-generation when the search reaches that generation
index, simulating a hard kill between two checkpoints.
"""

from __future__ import annotations

import os
from typing import Optional

from ..config.env import env_choice, env_float, env_int

__all__ = [
    "dse_dir",
    "dse_population",
    "dse_generations",
    "dse_top_k",
    "dse_epsilon",
    "dse_max_promote",
    "dse_strategy",
    "dse_kill_at",
]

_ENV_DIR = "REPRO_DSE_DIR"
_DEFAULT_DIR = os.path.join("benchmarks", "results", "dse")


def dse_dir() -> str:
    """Checkpoint/artifact directory (``REPRO_DSE_DIR`` overrides)."""
    raw = os.environ.get(_ENV_DIR)
    return raw if raw and raw.strip() else _DEFAULT_DIR


def dse_population() -> int:
    return env_int("REPRO_DSE_POPULATION", default=96, minimum=1)


def dse_generations() -> int:
    return env_int("REPRO_DSE_GENERATIONS", default=6, minimum=1)


def dse_top_k() -> int:
    """Floor on promotions per generation (even outside the window)."""
    return env_int("REPRO_DSE_TOPK", default=4, minimum=1)


def dse_epsilon() -> float:
    """Slack window around the predicted Pareto frontier: a candidate
    is simulated when its prediction is within ``(1 + epsilon)`` of the
    best prediction at no-worse area and power."""
    return env_float("REPRO_DSE_EPSILON", default=0.02, minimum=0.0)


def dse_max_promote() -> int:
    """Hard cap on simulations per generation."""
    return env_int("REPRO_DSE_MAX_PROMOTE", default=24, minimum=1)


def dse_strategy() -> str:
    return env_choice("REPRO_DSE_STRATEGY", "evolve", ("evolve", "beam"))


def dse_kill_at() -> Optional[int]:
    """Test-only fault knob: hard-exit mid-generation at this index."""
    return env_int("REPRO_DSE_KILL_AT", default=None, minimum=0)
