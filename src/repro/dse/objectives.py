"""The PPA objective vector: (model cycles, core area, rated power).

* **cycles** — the workload mix's weighted model cycles, predicted in
  the fast tier and replaced by the event engine's exact count once a
  candidate is promoted.  Weighted in fixed mix order so the fold is
  deterministic.
* **area_mm2** — the closed-form :func:`~repro.perf.area.core_area_mm2`
  (Table 3/4 anchors).  Exact at proposal time.
* **power_w** — the design's *rated* power: peak cube + vector dynamic
  power from the Table 3 anchors plus the static fraction, i.e. the
  PPA-table number a design point is budgeted against.  Like area it is
  a pure design property (frequency x datapath widths), so the
  promotion strata it induces are exact even before simulation; the
  achieved average power of a particular run is a profiling question,
  not a design-space axis.

The batched variants consume the same ``config_feature_columns`` dict
the feature extractor uses and reproduce the scalar helpers bit for bit
(pinned by ``tests/dse/test_objectives.py``) — the promotion loop calls
no per-config Python.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from ..config.core_configs import CoreConfig
from ..config.tech import tech_by_node
from ..perf.area import core_area_mm2
from ..perf.energy import EnergyModel
from .space import MixEntry

__all__ = [
    "BUFFERS_FACTOR",
    "design_area_mm2",
    "design_power_w",
    "design_area_columns",
    "design_power_columns",
    "mix_weighted_cycles",
]

# The core_area_mm2 default: computing units -> whole core (SRAM+control).
BUFFERS_FACTOR = 1.55


def design_area_mm2(config: CoreConfig, node_nm: float = 7) -> float:
    """Whole-core area of one design point (the area objective)."""
    return core_area_mm2(config, node_nm, buffers_factor=BUFFERS_FACTOR)


def design_power_w(config: CoreConfig, node_nm: float = 7) -> float:
    """Rated power of one design point (the power objective)."""
    em = EnergyModel(config, node_nm)
    return (em.cube_power_w() + em.vector_power_w()) \
        * (1.0 + em.static_fraction)


def _lanes(widths: np.ndarray) -> np.ndarray:
    # Widths are even byte counts, so float division == integer floor.
    return np.maximum(1.0, widths / 2.0)


def design_area_columns(columns: Dict[str, np.ndarray],
                        node_nm: float = 7) -> np.ndarray:
    """Vectorized :func:`design_area_mm2` over a config-column dict.

    Operation order mirrors the scalar path exactly — (scalar + vector)
    + cube, then the buffers factor — so the two agree bit for bit.
    """
    tech = tech_by_node(node_nm)
    kmacs = (columns["cube_m"] * columns["cube_k"]
             * columns["cube_n"]) / 1024
    units = tech.scalar_mm2 \
        + _lanes(columns["vector_width_bytes"]) * tech.vector_mm2_per_lane \
        + kmacs * tech.cube_mm2_per_kmac
    return units * BUFFERS_FACTOR


def design_power_columns(columns: Dict[str, np.ndarray],
                         node_nm: float = 7) -> np.ndarray:
    """Vectorized :func:`design_power_w` over a config-column dict."""
    tech = tech_by_node(node_nm)
    freq = columns["frequency_hz"]
    cube_flops = 2.0 * (columns["cube_m"] * columns["cube_k"]
                        * columns["cube_n"]) * freq
    cube_w = cube_flops * tech.cube_pj_per_flop * 1e-12
    vec_flops = 2.0 * _lanes(columns["vector_width_bytes"]) * freq
    vec_w = vec_flops * tech.vector_pj_per_flop * 1e-12
    static_fraction = EnergyModel.static_fraction
    return (cube_w + vec_w) * (1.0 + static_fraction)


def mix_weighted_cycles(mix: Sequence[MixEntry],
                        per_model_cycles: Sequence[float]) -> float:
    """``sum(weight_i * cycles_i)`` as an in-order left fold."""
    if len(mix) != len(per_model_cycles):
        raise ValueError(
            f"{len(per_model_cycles)} cycle values for {len(mix)}-entry mix")
    total = 0.0
    for entry, cycles in zip(mix, per_model_cycles):
        total += entry.weight * float(cycles)
    return total
