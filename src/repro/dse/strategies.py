"""Seeded proposal strategies: how each generation's candidates arise.

A strategy is a pure function of ``(space, generation, seed, elites,
seen)``: the per-generation RNG is ``default_rng([seed, generation])``,
elites arrive in a deterministic order (the engine sorts the archive
frontier by objectives then key), and every proposal is deduplicated
against the run's ``seen`` key set — so a resumed search proposes
exactly what the uninterrupted one would have.

Shared rules:

* Generation 0 is a seeded uniform sample of the space.
* When the *unseen remainder* of the space fits in one population, the
  strategy enumerates it outright (deterministic knob-major order)
  instead of sampling — small spaces and validation slices get exact
  full coverage instead of coupon-collector tails.
* Slots a strategy cannot fill with informed proposals are topped up
  with random immigrants, keeping exploration pressure nonzero.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from ..errors import ConfigError
from .space import Assignment, SearchSpace

__all__ = ["BeamStrategy", "EvolutionaryStrategy", "strategy_by_name"]


def _immigrants(space: SearchSpace, rng: np.random.Generator, count: int,
                taken: Set[str], out: List[Assignment]) -> None:
    """Fill up to ``count`` slots with fresh seeded-random candidates."""
    attempts = 0
    budget = max(200, 60 * count)
    while count > 0 and attempts < budget:
        attempts += 1
        assignment = space.random_assignment(rng)
        key = space.candidate_key(assignment)
        if key in taken:
            continue
        taken.add(key)
        out.append(assignment)
        count -= 1


def _exhaustive_remainder(space: SearchSpace, seen: Set[str],
                          population: int) -> List[Assignment]:
    out: List[Assignment] = []
    for assignment in space.points():
        if space.candidate_key(assignment) not in seen:
            out.append(assignment)
            if len(out) > population:  # too many to enumerate this gen
                return []
    return out


class _Strategy:
    """Base: generation-0 sampling and the small-space exhaustion rule."""

    name = "base"

    def propose(self, space: SearchSpace, generation: int, seed: int,
                elites: Sequence[Assignment], seen: Set[str],
                population: int) -> List[Assignment]:
        if population < 1:
            raise ConfigError("population must be >= 1")
        if space.size() <= population + len(seen):
            remainder = _exhaustive_remainder(space, seen, population)
            if remainder or space.size() <= len(seen):
                return remainder
        rng = np.random.default_rng([seed, generation])
        if generation == 0 or not elites:
            out: List[Assignment] = []
            _immigrants(space, rng, population, set(seen), out)
            return out
        return self._evolve(space, rng, elites, seen, population)

    def _evolve(self, space: SearchSpace, rng: np.random.Generator,
                elites: Sequence[Assignment], seen: Set[str],
                population: int) -> List[Assignment]:
        raise NotImplementedError


class BeamStrategy(_Strategy):
    """Deterministic beam: every one-knob neighbor of every elite, in
    (elite, knob, value) order, topped up with random immigrants."""

    name = "beam"

    def _evolve(self, space, rng, elites, seen, population):
        out: List[Assignment] = []
        taken = set(seen)
        for elite in elites:
            for neighbor in space.neighbors(elite):
                key = space.candidate_key(neighbor)
                if key in taken:
                    continue
                taken.add(key)
                out.append(neighbor)
                if len(out) >= population:
                    return out
        _immigrants(space, rng, population - len(out), taken, out)
        return out


class EvolutionaryStrategy(_Strategy):
    """Seeded (mu + lambda)-style evolution over the elite frontier:
    uniform crossover of two rng-chosen elites plus per-knob mutation,
    with a 10% immigrant quota for exploration."""

    name = "evolve"
    mutation_prob = 0.3
    immigrant_fraction = 0.1

    def _evolve(self, space, rng, elites, seen, population):
        out: List[Assignment] = []
        taken = set(seen)
        n_immigrants = max(1, int(population * self.immigrant_fraction))
        n_children = population - n_immigrants
        attempts = 0
        budget = max(200, 60 * n_children)
        while len(out) < n_children and attempts < budget:
            attempts += 1
            a = elites[int(rng.integers(len(elites)))]
            b = elites[int(rng.integers(len(elites)))]
            child = space.mutate(space.crossover(a, b, rng), rng,
                                 prob=self.mutation_prob)
            key = space.candidate_key(child)
            if key in taken:
                continue
            taken.add(key)
            out.append(child)
        _immigrants(space, rng, population - len(out), taken, out)
        return out


_STRATEGIES = {cls.name: cls for cls in (BeamStrategy, EvolutionaryStrategy)}


def strategy_by_name(name: str) -> _Strategy:
    try:
        return _STRATEGIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown DSE strategy {name!r}; known: "
            f"{sorted(_STRATEGIES)}") from None
