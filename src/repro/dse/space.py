"""Declarative design spaces: Table-5 knobs x tiling x workload mix.

A :class:`SearchSpace` is a base :class:`~repro.config.core_configs.CoreConfig`
plus an ordered tuple of :class:`Knob`\\ s — each a named axis with a
finite value list — and the workload mix the search optimizes for
(weighted ``(model, kwargs)`` pairs).  A *candidate* is one assignment
of a value to every knob; :meth:`SearchSpace.decode` turns it into a
concrete ``CoreConfig`` the compiler/simulator consumes.

Everything is content-addressed: the space has a digest over its
canonical dict form, and every candidate has a stable
:meth:`~SearchSpace.candidate_key` derived from the base core and the
assignment values — not from generation counters or names — so the same
design point proposed twice (or across a resume, or across two
different searches over the same space) hits the same archive entry and
the same persistent compile cache lines.

Knob axes understood by the decoder:

========================  ====================================================
``freq_factor``           multiplies ``frequency_hz``
``cube_m`` / ``cube_n``   replaces the cube tile dimension (Section 3.2 knob)
``vector_width_bytes``    absolute vector width
``l1a_factor``            multiplies the L1->L0A bus bandwidth
``l1b_factor``            multiplies the L1->L0B bus bandwidth
``ub_factor``             multiplies the UB port bandwidth
``llc_factor``            multiplies the per-core fabric bandwidth
``l1_capacity_factor``    multiplies the L1 capacity
``ub_capacity_factor``    multiplies the UB capacity
========================  ====================================================
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..config.core_configs import CoreConfig, CubeShape, core_config_by_name
from ..errors import ConfigError

__all__ = [
    "Knob",
    "SearchSpace",
    "MixEntry",
    "space_by_name",
    "NAMED_SPACES",
]

Assignment = Dict[str, object]

_KNOB_NAMES = (
    "freq_factor", "cube_m", "cube_n", "vector_width_bytes",
    "l1a_factor", "l1b_factor", "ub_factor", "llc_factor",
    "l1_capacity_factor", "ub_capacity_factor",
)


@dataclass(frozen=True)
class Knob:
    """One named search axis with its finite, ordered value list."""

    name: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.name not in _KNOB_NAMES:
            raise ConfigError(
                f"unknown DSE knob {self.name!r}; known: {_KNOB_NAMES}")
        if not self.values:
            raise ConfigError(f"knob {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ConfigError(f"knob {self.name!r} has duplicate values")


@dataclass(frozen=True)
class MixEntry:
    """One workload of the mix the search optimizes cycles for."""

    model: str
    kwargs: Tuple[Tuple[str, object], ...]  # sorted (key, value) pairs
    weight: float = 1.0

    @classmethod
    def of(cls, model: str, kwargs: Dict[str, object] = None,
           weight: float = 1.0) -> "MixEntry":
        items = tuple(sorted((kwargs or {}).items()))
        return cls(model=model, kwargs=items, weight=float(weight))

    @property
    def kwargs_dict(self) -> Dict[str, object]:
        return dict(self.kwargs)

    @property
    def label(self) -> str:
        if not self.kwargs:
            return self.model
        args = ",".join(f"{k}={v}" for k, v in self.kwargs)
        return f"{self.model}({args})"


@dataclass(frozen=True)
class SearchSpace:
    """A finite, enumerable candidate space around one base core."""

    name: str
    base_name: str
    knobs: Tuple[Knob, ...]
    mix: Tuple[MixEntry, ...]

    def __post_init__(self) -> None:
        if not self.knobs:
            raise ConfigError(f"space {self.name!r} has no knobs")
        if not self.mix:
            raise ConfigError(f"space {self.name!r} has an empty workload mix")
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise ConfigError(f"space {self.name!r} repeats a knob")
        base = self.base  # validates the core name
        if any(k.name == "llc_factor" for k in self.knobs) \
                and base.llc_bw_per_core is None:
            raise ConfigError(
                f"space {self.name!r} scales llc bandwidth but base core "
                f"{self.base_name!r} has no fabric limit (Table 5 N/A)")

    # -- shape ----------------------------------------------------------------

    @property
    def base(self) -> CoreConfig:
        return core_config_by_name(self.base_name)

    def size(self) -> int:
        n = 1
        for knob in self.knobs:
            n *= len(knob.values)
        return n

    def points(self) -> Iterator[Assignment]:
        """Every assignment, in deterministic knob-major order."""
        names = [k.name for k in self.knobs]
        for combo in itertools.product(*(k.values for k in self.knobs)):
            yield dict(zip(names, combo))

    def random_assignment(self, rng: np.random.Generator) -> Assignment:
        """One rng-drawn assignment (one ``integers`` call per knob)."""
        return {k.name: k.values[int(rng.integers(len(k.values)))]
                for k in self.knobs}

    def mutate(self, assignment: Assignment, rng: np.random.Generator,
               prob: float = 0.3) -> Assignment:
        """Per-knob resample with probability ``prob`` (may pick the
        incumbent value; the caller dedups against its seen set)."""
        out = dict(assignment)
        for knob in self.knobs:
            if rng.random() < prob:
                out[knob.name] = knob.values[int(rng.integers(
                    len(knob.values)))]
        return out

    def crossover(self, a: Assignment, b: Assignment,
                  rng: np.random.Generator) -> Assignment:
        """Uniform crossover: each knob from parent a or b by coin flip."""
        return {k.name: (a if int(rng.integers(2)) == 0 else b)[k.name]
                for k in self.knobs}

    def neighbors(self, assignment: Assignment) -> Iterator[Assignment]:
        """All one-knob variations, in (knob order, value order)."""
        for knob in self.knobs:
            for value in knob.values:
                if value != assignment[knob.name]:
                    out = dict(assignment)
                    out[knob.name] = value
                    yield out

    # -- identity -------------------------------------------------------------

    def candidate_key(self, assignment: Assignment) -> str:
        """Content key of one candidate: stable across runs, processes,
        and searches — derived from the decoded knob values only."""
        blob = json.dumps({"base": self.base_name, "knobs": assignment},
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "base": self.base_name,
            "knobs": [{"name": k.name, "values": list(k.values)}
                      for k in self.knobs],
            "mix": [{"model": m.model, "kwargs": dict(m.kwargs),
                     "weight": m.weight} for m in self.mix],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchSpace":
        try:
            knobs = tuple(Knob(k["name"], tuple(k["values"]))
                          for k in payload["knobs"])
            mix = tuple(MixEntry.of(m["model"], m.get("kwargs") or {},
                                    m.get("weight", 1.0))
                        for m in payload["mix"])
            return cls(name=str(payload["name"]),
                       base_name=str(payload["base"]),
                       knobs=knobs, mix=mix)
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed search-space payload: {exc}")

    def digest(self) -> str:
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    # -- decoding -------------------------------------------------------------

    def decode(self, assignment: Assignment) -> CoreConfig:
        """The concrete core this assignment describes.

        The variant keeps the base cube dtypes, so any model the base
        supports runs on every candidate; the name embeds the content
        key so compile-cache lines and report labels stay stable.
        """
        base = self.base
        kwargs: Dict[str, object] = {}
        cube_m, cube_n = base.cube.m, base.cube.n
        for knob in self.knobs:
            value = assignment[knob.name]
            if knob.name == "freq_factor":
                kwargs["frequency_hz"] = base.frequency_hz * float(value)
            elif knob.name == "cube_m":
                cube_m = int(value)
            elif knob.name == "cube_n":
                cube_n = int(value)
            elif knob.name == "vector_width_bytes":
                kwargs["vector_width_bytes"] = int(value)
            elif knob.name == "l1a_factor":
                kwargs["l1_to_l0a_bw"] = base.l1_to_l0a_bw * float(value)
            elif knob.name == "l1b_factor":
                kwargs["l1_to_l0b_bw"] = base.l1_to_l0b_bw * float(value)
            elif knob.name == "ub_factor":
                kwargs["ub_bw"] = base.ub_bw * float(value)
            elif knob.name == "llc_factor":
                kwargs["llc_bw_per_core"] = (base.llc_bw_per_core
                                             * float(value))
            elif knob.name == "l1_capacity_factor":
                kwargs["l1_bytes"] = int(base.l1_bytes * float(value))
            elif knob.name == "ub_capacity_factor":
                kwargs["ub_bytes"] = int(base.ub_bytes * float(value))
        if (cube_m, cube_n) != (base.cube.m, base.cube.n):
            kwargs["cube"] = CubeShape(cube_m, base.cube.k, cube_n)
        kwargs["name"] = (f"{base.name}-dse-"
                          f"{self.candidate_key(assignment)[:10]}")
        return dataclasses.replace(base, **kwargs)


# -- named spaces -------------------------------------------------------------

def _smoke_space() -> SearchSpace:
    """288 points around Ascend-Lite: the CI validation slice.

    Small enough to brute-force in the smoke gate, wide enough to have
    6 distinct (area, power) strata (3 clocks x 2 cube heights) and a
    capacity knob that is deliberately non-binding on the smoke
    workload, so exact simulated-cycle ties exercise the frontier's
    tie grouping.  Bus knobs step 4x apart: within-stratum cycle gaps
    then exceed the predictor's noise floor, which is what lets the
    epsilon window promote the true best without widening past the
    simulation budget.
    """
    return SearchSpace(
        name="smoke",
        base_name="ascend-lite",
        knobs=(
            Knob("freq_factor", (0.75, 1.0, 1.25)),
            Knob("cube_m", (4, 16)),
            Knob("l1a_factor", (0.25, 1.0)),
            Knob("l1b_factor", (0.25, 1.0)),
            Knob("ub_factor", (0.25, 1.0)),
            Knob("llc_factor", (0.5, 2.0, 8.0)),
            Knob("l1_capacity_factor", (1.0, 2.0)),
        ),
        mix=(MixEntry.of("gesture"),),
    )


def _edge_space() -> SearchSpace:
    """The ~83k-point mobile/edge space the scale benchmark searches."""
    return SearchSpace(
        name="edge",
        base_name="ascend-lite",
        knobs=(
            Knob("freq_factor", (0.5, 0.625, 0.75, 1.0, 1.25, 1.5)),
            Knob("cube_m", (4, 8, 16)),
            Knob("vector_width_bytes", (64, 128)),
            Knob("l1a_factor", (0.25, 0.5, 1.0, 2.0)),
            Knob("l1b_factor", (0.25, 0.5, 1.0, 2.0)),
            Knob("ub_factor", (0.25, 0.5, 1.0, 2.0)),
            Knob("llc_factor", (0.5, 1.0, 2.0, 4.0)),
            Knob("l1_capacity_factor", (0.5, 1.0, 2.0)),
            Knob("ub_capacity_factor", (0.5, 1.0, 2.0)),
        ),
        mix=(
            MixEntry.of("gesture", weight=1.0),
            MixEntry.of("wide_deep", weight=1.0),
            MixEntry.of("mobilenet_v2", {"batch": 1}, weight=0.5),
        ),
    )


def _datacenter_space() -> SearchSpace:
    """Inference-server space around the Ascend 610-class core."""
    return SearchSpace(
        name="datacenter",
        base_name="ascend",
        knobs=(
            Knob("freq_factor", (0.75, 1.0, 1.25, 1.5)),
            Knob("cube_m", (8, 16)),
            Knob("cube_n", (8, 16)),
            Knob("l1a_factor", (0.5, 1.0, 2.0)),
            Knob("l1b_factor", (0.5, 1.0, 2.0)),
            Knob("ub_factor", (0.5, 1.0, 2.0)),
            Knob("llc_factor", (0.5, 1.0, 2.0, 4.0)),
            Knob("l1_capacity_factor", (0.5, 1.0, 2.0)),
        ),
        mix=(
            MixEntry.of("mobilenet_v2", {"batch": 1}, weight=1.0),
            MixEntry.of("resnet18", {"batch": 1}, weight=1.0),
        ),
    )


NAMED_SPACES = {
    "smoke": _smoke_space,
    "edge": _edge_space,
    "datacenter": _datacenter_space,
}


def space_by_name(name: str) -> SearchSpace:
    try:
        return NAMED_SPACES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown search space {name!r}; known: "
            f"{sorted(NAMED_SPACES)}") from None
