"""Predictor-gated design-space exploration.

Search Table-5-style design spaces (clocks x cube tiling x buses x
capacities x workload mix) by predicting every candidate with the
learned cycle model and simulating only the predicted Pareto frontier —
``python -m repro.dse`` drives it; see ``docs/DSE.md``.
"""

from .engine import DseEngine, SearchSpec, brute_force_frontier
from .objectives import design_area_mm2, design_power_w, mix_weighted_cycles
from .pareto import frontier_groups, pareto_indices
from .space import Knob, MixEntry, SearchSpace, space_by_name
from .strategies import strategy_by_name

__all__ = [
    "DseEngine",
    "SearchSpec",
    "brute_force_frontier",
    "design_area_mm2",
    "design_power_w",
    "mix_weighted_cycles",
    "frontier_groups",
    "pareto_indices",
    "Knob",
    "MixEntry",
    "SearchSpace",
    "space_by_name",
    "strategy_by_name",
]
