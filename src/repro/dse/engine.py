"""The predictor-gated search driver.

One generation = propose -> predict -> promote -> simulate -> archive
-> checkpoint:

1. The strategy proposes up to ``population`` unseen candidates
   (deterministic in ``(seed, generation, archive)``).
2. The fast tier builds **one** stacked feature matrix for the whole
   generation (every mix workload x every candidate, via the batched
   extractor) and makes **one** model call; area and rated power come
   from the vectorized closed-form PPA columns.  No per-config Python
   runs in this loop.
3. Promotion keeps the predicted-Pareto-frontier plus epsilon window:
   a candidate is simulated only when its prediction is within
   ``(1 + epsilon)`` of the best prediction at no-worse area and rated
   power (batch plus archive), ordered by that slack and capped at
   ``max_promote`` simulations per generation.
4. Promoted candidates run through the event engine via
   :func:`repro.bench.supervisor.supervise` — process-parallel, sharing
   the content-addressed compile cache across generations and resumes,
   with per-job retry/timeout/quarantine under the ``REPRO_SWEEP_*``
   knobs; a candidate whose simulation is quarantined is dropped from
   the generation (and may be re-promoted later) rather than aborting
   the search.
5. The archive (candidate content key -> simulated record) and the
   stats ledger are checkpointed atomically (temp file + ``os.replace``)
   to a run-keyed JSON.  A killed search resumes from the last completed
   generation: archived candidates are **never** re-simulated, and the
   resumed trajectory is identical to the uninterrupted one — the
   exported frontier artifact is byte-identical (pinned by
   ``tests/dse/test_resume.py``).

The checkpoint carries the trained predictor payload itself, so a
resume predicts with exactly the model the search started with, plus a
RunManifest provenance stamp (the one volatile section, excluded from
every content key).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config.core_configs import CoreConfig
from ..errors import ConfigError
from ..perf.predictor.features import (candidate_feature_matrix,
                                       config_feature_columns)
from ..perf.predictor.model import CyclePredictor
from .objectives import (design_area_columns, design_power_columns,
                         mix_weighted_cycles)
from .pareto import frontier_groups
from .settings import dse_kill_at
from .space import Assignment, SearchSpace
from .strategies import strategy_by_name

__all__ = ["SearchSpec", "DseEngine", "brute_force_frontier"]

CHECKPOINT_SCHEMA = 1
FRONTIER_SCHEMA = 1


def _simulate_job(job: Tuple[str, dict, CoreConfig]) -> float:
    """Sweep worker: total simulated model cycles on one design point."""
    from ..compiler import GraphEngine
    from ..models import build_model

    model_name, kwargs, config = job
    graph = build_model(model_name, **kwargs)
    compiled = GraphEngine(config).compile_graph(graph)
    return float(sum(layer.cycles for layer in compiled.layers))


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


@dataclass(frozen=True)
class SearchSpec:
    """Everything that determines a search trajectory — and nothing else.

    The run key is a sha256 over the canonical spec dict; two processes
    given the same spec converge on the same checkpoint file, the same
    proposals, and the same frontier.
    """

    space: SearchSpace
    strategy: str = "evolve"
    population: int = 96
    generations: int = 6
    top_k: int = 4
    epsilon: float = 0.02
    max_promote: int = 24
    seed: int = 0
    node_nm: float = 7.0
    predictor_recipe: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ConfigError("population must be >= 1")
        if self.generations < 1:
            raise ConfigError("generations must be >= 1")
        if self.max_promote < 1:
            raise ConfigError("max_promote must be >= 1")
        strategy_by_name(self.strategy)  # validates the name

    def to_dict(self) -> dict:
        return {
            "space": self.space.to_dict(),
            "strategy": self.strategy,
            "population": self.population,
            "generations": self.generations,
            "top_k": self.top_k,
            "epsilon": self.epsilon,
            "max_promote": self.max_promote,
            "seed": self.seed,
            "node_nm": self.node_nm,
            "predictor_recipe": dict(self.predictor_recipe),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchSpec":
        return cls(
            space=SearchSpace.from_dict(payload["space"]),
            strategy=str(payload["strategy"]),
            population=int(payload["population"]),
            generations=int(payload["generations"]),
            top_k=int(payload["top_k"]),
            epsilon=float(payload["epsilon"]),
            max_promote=int(payload["max_promote"]),
            seed=int(payload["seed"]),
            node_nm=float(payload["node_nm"]),
            predictor_recipe=dict(payload.get("predictor_recipe", {})),
        )

    def run_key(self) -> str:
        return hashlib.sha256(_canonical(self.to_dict()).encode()).hexdigest()


class DseEngine:
    """One search run: in-memory state + the on-disk checkpoint."""

    def __init__(self, spec: SearchSpec, predictor: CyclePredictor,
                 out_dir) -> None:
        self.spec = spec
        self.predictor = predictor
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.completed = 0                     # generations finished
        self.seen: set = set()                 # every key ever proposed
        self.archive: Dict[str, dict] = {}     # key -> simulated record
        self.gen_stats: List[dict] = []
        # Wall-clock accumulators for benchmarks; never checkpointed.
        self.timings = {"predict_seconds": 0.0, "simulate_seconds": 0.0}
        self._run_key = spec.run_key()
        self._strategy = strategy_by_name(spec.strategy)
        self._workloads = self._load_mix()

    def _load_mix(self):
        from ..compiler.graph_engine import _im2col_scales
        from ..models import build_model

        loaded = []
        base = self.spec.space.base
        for entry in self.spec.space.mix:
            graph = build_model(entry.model, **entry.kwargs_dict)
            pairs = list(graph.grouped_workloads())
            for _, work in pairs:
                for gemm in work.gemms:
                    if not base.supports_dtype(gemm.dtype):
                        raise ConfigError(
                            f"mix workload {entry.label!r} needs "
                            f"{gemm.dtype} which base core {base.name!r} "
                            "does not support")
            loaded.append((entry, pairs, _im2col_scales(graph)))
        return loaded

    # -- paths ----------------------------------------------------------------

    @property
    def run_key(self) -> str:
        return self._run_key

    @property
    def checkpoint_path(self) -> Path:
        return self.out_dir / f"dse-{self._run_key[:16]}.json"

    @property
    def frontier_path(self) -> Path:
        return self.out_dir / f"dse-frontier-{self._run_key[:16]}.json"

    # -- resume ---------------------------------------------------------------

    @classmethod
    def resume(cls, checkpoint_path) -> "DseEngine":
        """Rebuild an engine from a checkpoint, predictor included."""
        path = Path(checkpoint_path)
        if not path.is_file():
            raise ConfigError(f"no DSE checkpoint at {path}")
        payload = json.loads(path.read_text())
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise ConfigError(
                f"DSE checkpoint {path} has schema "
                f"{payload.get('schema')!r}; this build expects "
                f"{CHECKPOINT_SCHEMA}")
        spec = SearchSpec.from_dict(payload["spec"])
        if payload.get("run_key") != spec.run_key():
            raise ConfigError(
                f"DSE checkpoint {path} run key does not match its spec — "
                "the file was edited; restart the search instead")
        engine = cls(spec, CyclePredictor.from_dict(payload["predictor"]),
                     path.parent)
        engine.completed = int(payload["completed_generations"])
        engine.seen = set(payload["seen"])
        engine.archive = dict(payload["archive"])
        engine.gen_stats = list(payload["generations"])
        return engine

    # -- the generation loop --------------------------------------------------

    def run(self, max_workers: Optional[int] = None,
            stop_after: Optional[int] = None) -> dict:
        """Run to ``spec.generations`` (or ``stop_after`` more), then
        return the frontier payload.  Checkpoints after every
        generation; safe to kill and :meth:`resume` at any point."""
        import time

        if not self.checkpoint_path.is_file():
            self._checkpoint()
        kill_at = dse_kill_at()
        ran = 0
        while self.completed < self.spec.generations:
            gen = self.completed
            proposals = self._strategy.propose(
                self.spec.space, gen, self.spec.seed, self._elites(),
                self.seen, self.spec.population)
            if not proposals:
                # Space exhausted: nothing left to propose, ever.
                self.completed = self.spec.generations
                self._checkpoint()
                break

            t0 = time.perf_counter()
            keys, configs, predicted, areas, powers = \
                self._predict(proposals)
            self.timings["predict_seconds"] += time.perf_counter() - t0

            promoted = self._promote(predicted, areas, powers)
            if kill_at is not None and gen == kill_at:
                os._exit(137)  # the REPRO_DSE_KILL_AT fault: die mid-gen

            to_sim = [i for i in promoted if keys[i] not in self.archive]
            t0 = time.perf_counter()
            self._simulate(gen, to_sim, proposals, keys, configs,
                           predicted, areas, powers, max_workers)
            self.timings["simulate_seconds"] += time.perf_counter() - t0

            self.seen.update(keys)
            self.gen_stats.append({
                "generation": gen,
                "proposed": len(proposals),
                "promoted": len(promoted),
                "simulated": len(to_sim),
                "archive": len(self.archive),
                "frontier": len(self.frontier()),
            })
            self.completed = gen + 1
            self._checkpoint()
            ran += 1
            if stop_after is not None and ran >= stop_after:
                break
        return self.frontier_payload()

    def _predict(self, proposals: Sequence[Assignment]):
        """One feature matrix and one model call for the generation."""
        space = self.spec.space
        keys = [space.candidate_key(a) for a in proposals]
        configs = [space.decode(a) for a in proposals]
        columns = config_feature_columns(configs)
        blocks = [candidate_feature_matrix(pairs, columns, scales)
                  for _, pairs, scales in self._workloads]
        stacked = np.vstack(blocks)
        per_layer = self.predictor.predict(stacked)
        weighted = np.zeros(len(configs), dtype=np.float64)
        offset = 0
        for (entry, pairs, _), block in zip(self._workloads, blocks):
            rows = block.shape[0]
            model_cycles = per_layer[offset:offset + rows] \
                .reshape(len(configs), len(pairs)).sum(axis=1)
            weighted += entry.weight * model_cycles
            offset += rows
        areas = design_area_columns(columns, self.spec.node_nm)
        powers = design_power_columns(columns, self.spec.node_nm)
        return keys, configs, weighted, areas, powers

    def _promote(self, predicted: np.ndarray, areas: np.ndarray,
                 powers: np.ndarray) -> List[int]:
        """Predicted-Pareto-frontier + epsilon-window promotion.

        A candidate's *envelope* is the lowest predicted cycle count
        among all points — this generation's batch plus the whole
        archive (at its stored predictions, so resume sees the same
        envelope) — whose area and rated power are both no worse.  The
        candidate is promoted when its own prediction is within
        ``(1 + epsilon)`` of that envelope, i.e. it is on or near the
        predicted Pareto frontier over (cycles, area, power).  Strata
        the predictor can already tell are dominated (say, a higher
        clock at the same area: more power *and* more bus-bound cycles)
        contribute nothing, so the whole simulation budget concentrates
        on strata that can actually reach the frontier.

        Promotions are ordered by slack (prediction over envelope),
        tie-broken by prediction then batch index, and capped at
        ``max_promote``; at least ``top_k`` candidates are always
        promoted so a mistrained predictor cannot starve the search.
        """
        pred = np.asarray(predicted, dtype=np.float64)
        area = np.asarray(areas, dtype=np.float64)
        power = np.asarray(powers, dtype=np.float64)
        if self.archive:
            records = [self.archive[k] for k in sorted(self.archive)]
            pred = np.concatenate([pred, [r["predicted_cycles"]
                                          for r in records]])
            area = np.concatenate([area, [r["objectives"][1]
                                          for r in records]])
            power = np.concatenate([power, [r["objectives"][2]
                                            for r in records]])
        ranked: List[Tuple[float, float, int]] = []
        for i in range(len(predicted)):
            mask = (area <= area[i]) & (power <= power[i])
            envelope = float(pred[mask].min())  # <= pred[i]: mask has i
            ranked.append((float(pred[i]) / envelope, float(pred[i]), i))
        ranked.sort()
        window = [r for r in ranked if r[0] <= 1.0 + self.spec.epsilon]
        if len(window) < self.spec.top_k:
            window = ranked[:self.spec.top_k]
        return [idx for _, _, idx in window[:self.spec.max_promote]]

    def _simulate(self, gen: int, to_sim: List[int],
                  proposals: Sequence[Assignment], keys: List[str],
                  configs: List[CoreConfig], predicted: np.ndarray,
                  areas: np.ndarray, powers: np.ndarray,
                  max_workers: Optional[int]) -> None:
        import warnings

        from ..bench.supervisor import SweepPolicy, supervise
        from ..errors import DegradedSweepWarning

        mix = self.spec.space.mix
        jobs = [(entry.model, entry.kwargs_dict, configs[i])
                for i in to_sim for entry in mix]
        outcome = supervise(jobs, _simulate_job, max_workers=max_workers,
                            policy=SweepPolicy.from_env())
        results = outcome.results
        for slot, i in enumerate(to_sim):
            block = results[slot * len(mix):(slot + 1) * len(mix)]
            if any(c is None for c in block):
                # A quarantined job leaves this candidate without a full
                # mix measurement: drop it from the archive (it can be
                # re-proposed and re-promoted later) instead of poisoning
                # the search with partial cycles.
                warnings.warn(
                    f"DSE candidate {keys[i][:16]} dropped from generation "
                    f"{gen}: simulation quarantined after retries",
                    DegradedSweepWarning, stacklevel=2)
                continue
            per_model = [float(c) for c in block]
            cycles = mix_weighted_cycles(mix, per_model)
            self.archive[keys[i]] = {
                "assignment": dict(proposals[i]),
                "generation": gen,
                "mix_cycles": per_model,
                "predicted_cycles": float(predicted[i]),
                "objectives": [cycles, float(areas[i]), float(powers[i])],
            }

    # -- frontier -------------------------------------------------------------

    def _elites(self) -> List[Assignment]:
        return [self.archive[key]["assignment"]
                for _, members in self.frontier() for key in members]

    def frontier(self):
        keys = sorted(self.archive)
        objs = [self.archive[k]["objectives"] for k in keys]
        return frontier_groups(keys, objs)

    def stats(self) -> dict:
        simulated = sum(g["simulated"] for g in self.gen_stats)
        proposed = sum(g["proposed"] for g in self.gen_stats)
        size = self.spec.space.size()
        return {
            "space_size": size,
            "proposed": proposed,
            "predicted": proposed,
            "simulated": simulated,
            "simulated_over_candidates": (simulated / proposed
                                          if proposed else 0.0),
            "simulated_over_space": simulated / size,
        }

    def frontier_payload(self) -> dict:
        """The deterministic frontier artifact (content-keyed; no
        manifest, no wall times — byte-identical across resumes)."""
        payload = {
            "schema": FRONTIER_SCHEMA,
            "run_key": self._run_key,
            "spec": self.spec.to_dict(),
            "completed_generations": self.completed,
            "stats": self.stats(),
            "generations": list(self.gen_stats),
            "frontier": [
                {
                    "objectives": list(vec),
                    "members": [
                        {
                            "key": key,
                            "assignment": self.archive[key]["assignment"],
                            "mix_cycles": self.archive[key]["mix_cycles"],
                            "generation": self.archive[key]["generation"],
                        }
                        for key in members
                    ],
                }
                for vec, members in self.frontier()
            ],
        }
        payload["content_key"] = hashlib.sha256(
            _canonical(payload).encode()).hexdigest()
        return payload

    def write_frontier(self, path=None) -> Path:
        path = Path(path) if path is not None else self.frontier_path
        _atomic_write_json(path, self.frontier_payload())
        return path

    # -- checkpointing --------------------------------------------------------

    def _checkpoint(self) -> None:
        from ..profiling.manifest import RunManifest

        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "run_key": self._run_key,
            "spec": self.spec.to_dict(),
            "predictor": self.predictor.to_dict(),
            "completed_generations": self.completed,
            "seen": sorted(self.seen),
            "archive": self.archive,
            "generations": self.gen_stats,
            # Provenance only: the single volatile section, excluded
            # from run/content keys and from resume-identity checks.
            "manifest": RunManifest.collect(
                model=",".join(e.label for e in self.spec.space.mix),
                config=self.spec.space.base_name,
                extras={"dse": self.spec.space.name}).to_dict(),
        }
        _atomic_write_json(self.checkpoint_path, payload)


# -- exhaustive reference -----------------------------------------------------

def brute_force_frontier(space: SearchSpace, node_nm: float = 7.0,
                         max_workers: Optional[int] = None):
    """Simulate *every* point of a (small) space; the exactness oracle.

    Returns ``(frontier, n_points)`` with the frontier in the same
    grouped form the engine emits, so the smoke gate compares the two
    directly.
    """
    points = list(space.points())
    keys = [space.candidate_key(a) for a in points]
    configs = [space.decode(a) for a in points]
    columns = config_feature_columns(configs)
    areas = design_area_columns(columns, node_nm)
    powers = design_power_columns(columns, node_nm)

    from ..bench.runner import run_sweep

    mix = space.mix
    jobs = [(entry.model, entry.kwargs_dict, config)
            for config in configs for entry in mix]
    results = run_sweep(jobs, _simulate_job, max_workers=max_workers)
    objs = []
    for i in range(len(points)):
        per_model = [float(c) for c in
                     results[i * len(mix):(i + 1) * len(mix)]]
        objs.append([mix_weighted_cycles(mix, per_model),
                     float(areas[i]), float(powers[i])])
    return frontier_groups(keys, objs), len(points)
