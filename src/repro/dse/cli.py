"""DSE CLI: run, resume, and report predictor-gated searches.

::

    python -m repro.dse search --space edge --generations 6   # full search
    python -m repro.dse resume --checkpoint <path>            # pick up a kill
    python -m repro.dse frontier --checkpoint <path>          # re-emit artifact
    python -m repro.dse report --checkpoint <path>            # ascii tables
    python -m repro.dse smoke                                 # the CI gate
    python -m repro.dse chaos-smoke                           # the RAS gate

``search`` trains a seeded predictor (or loads ``--artifact``), runs the
search, and writes both the checkpoint and the content-keyed frontier
artifact.  ``smoke`` is the ``make dse-smoke`` target: a fixed-seed
2-generation search over the 288-point validation slice must reproduce
the exact brute-force Pareto frontier while simulating at least 10x
fewer candidates than exhaustive sweep does; nonzero exit otherwise.
``chaos-smoke`` is the ``make chaos-smoke`` target: the same search run
under a seeded host-side chaos campaign (worker kills, job hangs,
corrupted payloads) through the sweep supervisor must *still* recover
the exact brute-force frontier, with at least one kill, one
timeout-recovered hang, and one corrupted payload actually injected —
and it writes the failure-report artifact to ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from ..errors import ConfigError
from .engine import DseEngine, SearchSpec, brute_force_frontier
from .settings import (dse_dir, dse_epsilon, dse_generations,
                       dse_max_promote, dse_population, dse_strategy,
                       dse_top_k)
from .space import SearchSpace, space_by_name

__all__ = ["main"]

# The fixed-seed recipe and gates `make dse-smoke` enforces.
SMOKE_SEED = 0
SMOKE_POPULATION = 160
SMOKE_GENERATIONS = 2
SMOKE_TOP_K = 2
SMOKE_EPSILON = 0.05
SMOKE_MAX_PROMOTE = 14
SMOKE_TRAIN_VARIANTS = 60
SMOKE_TRAIN_ROUNDS = 60
SMOKE_SIM_RATIO_GATE = 10.0

# The seeded chaos campaign `make chaos-smoke` runs the same search
# under: worker kills, 30 s job hangs (caught by the 2 s supervisor
# timeout), and corrupted hand-backs, each decided per (job, attempt)
# from the seed.  Probabilities are sized so a ~30-job search sees a
# few of each kind while a 3-retry budget makes quarantine (4 faults in
# a row on one job) vanishingly unlikely.
CHAOS_SMOKE_SPEC = "seed=0;kill:p=0.10;hang:p=0.06,seconds=30;corrupt:p=0.08"
CHAOS_SMOKE_TIMEOUT = 2.0
CHAOS_SMOKE_RETRIES = 3
CHAOS_SMOKE_WORKERS = 2


def _load_space(args: argparse.Namespace) -> SearchSpace:
    if getattr(args, "space_file", None):
        payload = json.loads(Path(args.space_file).read_text())
        return SearchSpace.from_dict(payload)
    return space_by_name(args.space)


def _train_predictor(space: SearchSpace, variants: int, rounds: int,
                     seed: int, workers: Optional[int]):
    """Seeded predictor fit on the space's own base core and mix."""
    from ..perf.predictor.train import train_predictor

    corpus = [(entry.model, entry.kwargs_dict) for entry in space.mix]
    recipe = {
        "corpus": [[model, kwargs] for model, kwargs in corpus],
        "cores": [space.base_name],
        "variants": variants,
        "rounds": rounds,
        "seed": seed,
    }
    report = train_predictor(seed=seed, corpus=corpus,
                             cores=[space.base_name],
                             variants_per_core=variants, rounds=rounds,
                             max_workers=workers)
    return report.predictor, recipe, report


def _spec_from_args(args: argparse.Namespace, space: SearchSpace,
                    recipe: dict) -> SearchSpec:
    return SearchSpec(
        space=space,
        strategy=args.strategy,
        population=args.population,
        generations=args.generations,
        top_k=args.top_k,
        epsilon=args.epsilon,
        max_promote=args.max_promote,
        seed=args.seed,
        node_nm=args.node,
        predictor_recipe=recipe,
    )


def _print_summary(engine: DseEngine, frontier_file: Path) -> None:
    stats = engine.stats()
    print(f"search {engine.run_key[:16]}: "
          f"{engine.completed}/{engine.spec.generations} generations, "
          f"{stats['predicted']} candidates predicted, "
          f"{stats['simulated']} simulated "
          f"({stats['simulated_over_candidates']:.1%} of candidates, "
          f"{stats['simulated_over_space']:.2%} of the "
          f"{stats['space_size']}-point space)")
    frontier = engine.frontier()
    print(f"frontier: {len(frontier)} points")
    for vec, members in frontier:
        cycles, area, power = vec
        print(f"  {cycles:>14,.0f} cyc  {area:6.3f} mm2  {power:6.3f} W  "
              f"({len(members)} design{'s' if len(members) > 1 else ''})")
    print(f"checkpoint: {engine.checkpoint_path}")
    print(f"frontier artifact: {frontier_file} "
          f"(content key {engine.frontier_payload()['content_key'][:16]}…)")


def _cmd_search(args: argparse.Namespace) -> int:
    space = _load_space(args)
    if args.artifact:
        from ..perf.predictor.train import load_artifact

        predictor, payload = load_artifact(Path(args.artifact))
        recipe = {"artifact_content_key": payload.get("content_key", "")}
    else:
        predictor, recipe, report = _train_predictor(
            space, args.train_variants, args.train_rounds, args.seed,
            args.workers)
        print(f"trained predictor on {report.n_samples} samples "
              f"(holdout MAPE {report.holdout_mape:.1%}) in "
              f"{report.train_seconds:.1f}s")
    spec = _spec_from_args(args, space, recipe)
    engine = DseEngine(spec, predictor, args.out or dse_dir())
    if engine.checkpoint_path.is_file() and not args.fresh:
        print(f"existing checkpoint {engine.checkpoint_path} — resuming "
              "(pass --fresh to discard)")
        engine = DseEngine.resume(engine.checkpoint_path)
    engine.run(max_workers=args.workers)
    frontier_file = engine.write_frontier()
    _print_summary(engine, frontier_file)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    engine = DseEngine.resume(Path(args.checkpoint))
    print(f"resumed {engine.run_key[:16]} at generation "
          f"{engine.completed}/{engine.spec.generations} "
          f"({len(engine.archive)} candidates archived — none will be "
          "re-simulated)")
    engine.run(max_workers=args.workers)
    frontier_file = engine.write_frontier()
    _print_summary(engine, frontier_file)
    return 0


def _cmd_frontier(args: argparse.Namespace) -> int:
    engine = DseEngine.resume(Path(args.checkpoint))
    path = engine.write_frontier(Path(args.out) if args.out else None)
    payload = engine.frontier_payload()
    print(f"{len(payload['frontier'])} frontier points from "
          f"{len(engine.archive)} archived candidates")
    print(f"artifact: {path} (content key {payload['content_key'][:16]}…)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from ..analysis import ascii_table

    engine = DseEngine.resume(Path(args.checkpoint))
    rows = []
    for vec, members in engine.frontier():
        cycles, area, power = vec
        first = engine.archive[members[0]]
        knobs = ",".join(f"{k}={v}" for k, v in
                         sorted(first["assignment"].items()))
        rows.append([f"{cycles:,.0f}", f"{area:.3f}", f"{power:.3f}",
                     len(members), first["generation"], knobs])
    print(ascii_table(
        ["weighted cycles", "area mm2", "power W", "designs", "gen",
         "knobs (one representative)"],
        rows, title=f"Pareto frontier — {engine.spec.space.name} "
                    f"@ {engine.spec.space.base_name}"))
    gen_rows = [[g["generation"], g["proposed"], g["promoted"],
                 g["simulated"], g["archive"], g["frontier"]]
                for g in engine.gen_stats]
    print(ascii_table(
        ["gen", "proposed", "promoted", "simulated", "archive", "frontier"],
        gen_rows, title="search trajectory"))
    stats = engine.stats()
    print(f"simulated {stats['simulated']}/{stats['predicted']} predicted "
          f"candidates ({stats['simulated_over_candidates']:.1%}); "
          f"space coverage {stats['simulated_over_space']:.2%} of "
          f"{stats['space_size']} points")
    return 0


def smoke_spec(space: Optional[SearchSpace] = None,
               recipe: Optional[dict] = None) -> SearchSpec:
    """The fixed spec `make dse-smoke` and the benchmarks both run."""
    return SearchSpec(
        space=space if space is not None else space_by_name("smoke"),
        strategy="evolve",
        population=SMOKE_POPULATION,
        generations=SMOKE_GENERATIONS,
        top_k=SMOKE_TOP_K,
        epsilon=SMOKE_EPSILON,
        max_promote=SMOKE_MAX_PROMOTE,
        seed=SMOKE_SEED,
        predictor_recipe=dict(recipe or {}),
    )


def _cmd_smoke(args: argparse.Namespace) -> int:
    import tempfile

    from ..perf.predictor.sweep import clear_memo_tiers

    failures: List[str] = []
    start = time.perf_counter()
    space = space_by_name("smoke")
    predictor, recipe, report = _train_predictor(
        space, SMOKE_TRAIN_VARIANTS, SMOKE_TRAIN_ROUNDS, SMOKE_SEED,
        args.workers)
    print(f"[dse-smoke] trained predictor on {report.n_samples} samples "
          f"(holdout MAPE {report.holdout_mape:.1%}) in "
          f"{report.train_seconds:.1f}s")

    clear_memo_tiers()
    with tempfile.TemporaryDirectory(prefix="dse-smoke-") as tmp:
        engine = DseEngine(smoke_spec(space, recipe), predictor, tmp)
        engine.run(max_workers=args.workers)
        stats = engine.stats()
        search_frontier = engine.frontier()
        print(f"[dse-smoke] search: {stats['predicted']} predicted, "
              f"{stats['simulated']} simulated, "
              f"{len(search_frontier)} frontier points")

        brute, n_points = brute_force_frontier(
            space, max_workers=args.workers)
        ratio = (n_points / stats["simulated"]
                 if stats["simulated"] else float("inf"))
        print(f"[dse-smoke] brute force: {n_points} simulated, "
              f"{len(brute)} frontier points -> search simulated "
              f"{ratio:.1f}x fewer")

        search_vecs = [vec for vec, _ in search_frontier]
        brute_vecs = [vec for vec, _ in brute]
        if search_vecs != brute_vecs:
            missing = [v for v in brute_vecs if v not in search_vecs]
            extra = [v for v in search_vecs if v not in brute_vecs]
            failures.append(
                f"frontier mismatch: missing {missing}, extra {extra}")
        else:
            brute_members = dict(brute)
            for vec, members in search_frontier:
                if not set(members) <= set(brute_members[vec]):
                    failures.append(
                        f"frontier point {vec} lists designs the "
                        "brute-force oracle does not")
        if ratio < SMOKE_SIM_RATIO_GATE:
            failures.append(
                f"search simulated only {ratio:.1f}x fewer candidates "
                f"than exhaustive (< {SMOKE_SIM_RATIO_GATE:.0f}x)")

    elapsed = time.perf_counter() - start
    if failures:
        for failure in failures:
            print(f"[dse-smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"[dse-smoke] OK in {elapsed:.1f}s — exact frontier reproduced "
          f"with {stats['simulated']}/{n_points} simulations")
    return 0


def _results_dir() -> Path:
    """``benchmarks/results`` under the repo root (cwd as a fallback)."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").is_file():
            return parent / "benchmarks" / "results"
    return Path.cwd() / "benchmarks" / "results"


@contextmanager
def _env_scope(**pairs: object):
    """Temporarily set environment knobs, restoring on exit."""
    previous = {key: os.environ.get(key) for key in pairs}
    os.environ.update({key: str(value) for key, value in pairs.items()})
    try:
        yield
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _cmd_chaos_smoke(args: argparse.Namespace) -> int:
    """``make chaos-smoke``: the dse-smoke search under seeded chaos.

    The brute-force frontier is computed fault-free, so matching it
    exactly *is* the byte-identity proof: ``make dse-smoke`` already
    pins the fault-free search to the same oracle, hence
    chaos-run == clean-run.  The campaign must actually bite (>= 1
    worker kill, >= 1 timeout-recovered hang, >= 1 corrupted payload)
    and no job may be quarantined — every fault has to be absorbed by
    the supervisor's retry machinery.
    """
    import tempfile

    from ..bench import supervisor
    from ..perf.predictor.sweep import clear_memo_tiers
    from ..reliability.chaos import chaos_scope, parse_chaos_spec

    failures: List[str] = []
    start = time.perf_counter()
    plan = parse_chaos_spec(CHAOS_SMOKE_SPEC)
    space = space_by_name("smoke")
    predictor, recipe, report = _train_predictor(
        space, SMOKE_TRAIN_VARIANTS, SMOKE_TRAIN_ROUNDS, SMOKE_SEED,
        args.workers)
    print(f"[chaos-smoke] trained predictor on {report.n_samples} samples "
          f"(holdout MAPE {report.holdout_mape:.1%}) in "
          f"{report.train_seconds:.1f}s")
    print(f"[chaos-smoke] campaign: {CHAOS_SMOKE_SPEC} | "
          f"timeout={CHAOS_SMOKE_TIMEOUT}s retries={CHAOS_SMOKE_RETRIES} "
          f"workers={CHAOS_SMOKE_WORKERS}")

    clear_memo_tiers()
    supervisor.reset_counters()
    supervisor.drain_failures()
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        engine = DseEngine(smoke_spec(space, recipe), predictor, tmp)
        with _env_scope(REPRO_SWEEP_TIMEOUT=CHAOS_SMOKE_TIMEOUT,
                        REPRO_SWEEP_RETRIES=CHAOS_SMOKE_RETRIES), \
                chaos_scope(plan):
            engine.run(max_workers=CHAOS_SMOKE_WORKERS)
        counts = supervisor.counters()
        reports = supervisor.drain_failures()
        stats = engine.stats()
        search_frontier = engine.frontier()
        frontier_key = engine.frontier_payload()["content_key"]
        print(f"[chaos-smoke] search under chaos: "
              f"{stats['simulated']} simulated, "
              f"{len(search_frontier)} frontier points | "
              f"kills={counts['worker_deaths']} "
              f"timeouts={counts['timeouts']} "
              f"corrupt={counts['corrupt_payloads']} "
              f"retries={counts['retries']} "
              f"respawns={counts['pool_respawns']} "
              f"quarantined={counts['quarantined']}")

        # Fault-free oracle: exhaustive simulation of the whole slice.
        brute, n_points = brute_force_frontier(space,
                                               max_workers=args.workers)
        search_vecs = [vec for vec, _ in search_frontier]
        brute_vecs = [vec for vec, _ in brute]
        if search_vecs != brute_vecs:
            missing = [v for v in brute_vecs if v not in search_vecs]
            extra = [v for v in search_vecs if v not in brute_vecs]
            failures.append(
                f"frontier mismatch under chaos: missing {missing}, "
                f"extra {extra}")
        else:
            brute_members = dict(brute)
            for vec, members in search_frontier:
                if not set(members) <= set(brute_members[vec]):
                    failures.append(
                        f"frontier point {vec} lists designs the "
                        "brute-force oracle does not")
    if counts["worker_deaths"] < 1:
        failures.append("campaign injected no worker kill")
    if counts["timeouts"] < 1:
        failures.append("campaign produced no timeout-recovered hang")
    if counts["corrupt_payloads"] < 1:
        failures.append("campaign corrupted no payload")
    if counts["quarantined"] or reports:
        failures.append(
            f"{counts['quarantined']} job(s) quarantined — the retry "
            "budget failed to absorb the campaign")

    elapsed = time.perf_counter() - start
    artifact = {
        "schema": 1,
        "chaos_spec": CHAOS_SMOKE_SPEC,
        "policy": {"timeout": CHAOS_SMOKE_TIMEOUT,
                   "retries": CHAOS_SMOKE_RETRIES,
                   "workers": CHAOS_SMOKE_WORKERS},
        "counters": counts,
        "failure_reports": [r.to_dict() for r in reports],
        "frontier": {"points": len(search_frontier),
                     "content_key": frontier_key,
                     "matches_brute_force": not failures},
        "gates": failures,
        "elapsed_seconds": round(elapsed, 2),
    }
    out = _results_dir() / "chaos_smoke.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"[chaos-smoke] report: {out}")

    if failures:
        for failure in failures:
            print(f"[chaos-smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"[chaos-smoke] OK in {elapsed:.1f}s — exact frontier recovered "
          f"through {counts['worker_deaths']} kill(s), "
          f"{counts['timeouts']} timeout(s), "
          f"{counts['corrupt_payloads']} corrupted payload(s)")
    return 0


def _add_search_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--space", default="edge",
                        help="named space (smoke|edge|datacenter)")
    parser.add_argument("--space-file", default=None,
                        help="JSON SearchSpace payload (overrides --space)")
    parser.add_argument("--strategy", default=dse_strategy(),
                        choices=("evolve", "beam"))
    parser.add_argument("--population", type=int, default=dse_population())
    parser.add_argument("--generations", type=int,
                        default=dse_generations())
    parser.add_argument("--top-k", type=int, default=dse_top_k())
    parser.add_argument("--epsilon", type=float, default=dse_epsilon())
    parser.add_argument("--max-promote", type=int,
                        default=dse_max_promote())
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--node", type=float, default=7.0,
                        help="process node (nm) for the PPA objectives")
    parser.add_argument("--artifact", default=None,
                        help="pretrained predictor artifact (else train)")
    parser.add_argument("--train-variants", type=int, default=48)
    parser.add_argument("--train-rounds", type=int, default=80)
    parser.add_argument("--out", default=None,
                        help=f"checkpoint dir (default {dse_dir()})")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore an existing checkpoint for this spec")
    parser.add_argument("--workers", type=int, default=None)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="predictor-gated design-space exploration")
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="run a search from scratch")
    _add_search_args(search)
    search.set_defaults(func=_cmd_search)

    resume = sub.add_parser("resume", help="continue a killed search")
    resume.add_argument("--checkpoint", required=True)
    resume.add_argument("--workers", type=int, default=None)
    resume.set_defaults(func=_cmd_resume)

    frontier = sub.add_parser("frontier",
                              help="re-emit the frontier artifact")
    frontier.add_argument("--checkpoint", required=True)
    frontier.add_argument("--out", default=None)
    frontier.set_defaults(func=_cmd_frontier)

    report = sub.add_parser("report", help="ascii frontier + trajectory")
    report.add_argument("--checkpoint", required=True)
    report.set_defaults(func=_cmd_report)

    smoke = sub.add_parser("smoke", help="the make dse-smoke CI gate")
    smoke.add_argument("--workers", type=int, default=None)
    smoke.set_defaults(func=_cmd_smoke)

    chaos = sub.add_parser("chaos-smoke",
                           help="the make chaos-smoke RAS gate")
    chaos.add_argument("--workers", type=int, default=None,
                       help="workers for the fault-free phases (training, "
                            "brute force); the chaos phase always uses "
                            f"{CHAOS_SMOKE_WORKERS}")
    chaos.set_defaults(func=_cmd_chaos_smoke)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
