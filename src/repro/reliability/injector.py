"""The deterministic fault injector and its process-global registration.

One :class:`FaultInjector` owns a seeded ``numpy`` generator and a set of
counters; every RAS hook in the stack (scratchpad reads, both engine
drains, the compile cache, arena lowering, the cluster model) asks the
*active* injector whether to perturb the operation at hand.  With no
plan installed and ``REPRO_FAULTS`` unset, :func:`active_injector`
returns ``None`` from one dict probe — the hooks then fall through to
the exact pre-existing code paths, keeping cycles, traces, and
functional outputs byte-identical to a build without this module.

Determinism: all randomness flows through the plan's seed, so a given
(plan, workload) pair injects the same faults at the same sites on every
run — a failing fault campaign is replayable from its spec string.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

import numpy as np

from .faults import FaultPlan, MemBitFault, StallFault, SyncFault, \
    parse_fault_spec

__all__ = [
    "FaultInjector",
    "install_plan",
    "clear_plan",
    "active_injector",
    "fault_scope",
]

_ENV = "REPRO_FAULTS"


class FaultInjector:
    """Applies a :class:`~repro.reliability.faults.FaultPlan` at run time.

    The injector is the single source of randomness for a campaign; the
    ``counters`` dict records every decision so tests (and the smoke
    suite) can assert that each injected fault was corrected, detected,
    or recovered rather than silently lost.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.counters: Dict[str, int] = {
            "mem_injected": 0,      # bit-flip events injected
            "ecc_corrected": 0,     # single-bit, SECDED corrected
            "ecc_detected": 0,      # double-bit, raised as EccError
            "mem_corrupted": 0,     # ECC off: data silently corrupted
            "sync_dropped": 0,
            "sync_duplicated": 0,
            "sync_reordered": 0,
            "stall_injected": 0,    # instructions slowed down
            "cache_corrupted": 0,   # artifacts garbled after store
            "arena_failed": 0,      # lowering calls forced to fall back
        }

    # -- memory (scratchpad bit flips, filtered by the SECDED model) -----------

    def memory_fault(self, pad_name: str) -> Optional[MemBitFault]:
        """The fault model firing on this scratchpad read, if any."""
        for fault in self.plan.memory:
            if fault.probability > 0 and fault.matches(pad_name) \
                    and self.rng.random() < fault.probability:
                self.counters["mem_injected"] += 1
                return fault
        return None

    # -- sync (flag-channel set events) ----------------------------------------

    def sync_action(self, packed_channel: int) -> Optional[str]:
        """drop/dup/reorder for one retiring ``set_flag``, or None."""
        for fault in self.plan.sync:
            if fault.probability > 0 and fault.matches(packed_channel) \
                    and self.rng.random() < fault.probability:
                self.counters[f"sync_{_SYNC_COUNTER[fault.action]}"] += 1
                return fault.action
        return None

    def has_sync_faults(self) -> bool:
        return any(f.probability > 0 for f in self.plan.sync)

    def perturb_matches(self, match: np.ndarray, packed: np.ndarray,
                        set_rows: np.ndarray) -> np.ndarray:
        """Arena-path twin of :meth:`sync_action`.

        The arena drain resolves waits through a *static* wait->set
        matching, so sync faults perturb the match column up front: a
        dropped set makes its matched wait stall forever (-2, the
        never-set marker); a reorder swaps the producers of adjacent
        waits on the same channel; a duplicate is timing-neutral under
        static matching (the extra flag has no consumer) and is only
        counted.  Returns a perturbed copy; the input is never mutated.
        """
        out = match.copy()
        dropped = []
        for row in set_rows.tolist():
            action = self.sync_action(int(packed[row]))
            if action == "drop":
                dropped.append(row)
            elif action == "reorder":
                waits = np.nonzero(out == row)[0]
                if waits.size:
                    w = int(waits[0])
                    # swap producers with the next wait on this channel
                    later = np.nonzero(
                        (packed == packed[w]) & (np.arange(len(out)) > w)
                        & (out >= 0))[0]
                    if later.size:
                        w2 = int(later[0])
                        out[w], out[w2] = out[w2], out[w]
        if dropped:
            out[np.isin(out, dropped)] = -2
        return out

    # -- stalls (pipe slowdowns through the cost model) ------------------------

    def has_stall_faults(self) -> bool:
        return any(f.probability > 0 for f in self.plan.stall)

    def scale_costs(self, cost: np.ndarray, pipe: np.ndarray) -> np.ndarray:
        """Per-instruction cost column with stall faults applied (a copy)."""
        from ..isa.pipes import Pipe

        out = np.asarray(cost, np.int64).copy()
        for fault in self.plan.stall:
            if fault.probability <= 0:
                continue
            if fault.pipe == "*":
                eligible = np.ones(out.size, bool)
            else:
                eligible = pipe == int(Pipe[fault.pipe])
            hit = eligible & (self.rng.random(out.size) < fault.probability)
            count = int(hit.sum())
            if count:
                self.counters["stall_injected"] += count
                out[hit] = np.maximum(
                    (out[hit] * fault.factor).astype(np.int64), out[hit] + 1)
        return out

    # -- compiler-tier faults --------------------------------------------------

    def should_corrupt_cache(self) -> bool:
        fault = self.plan.cache
        if fault is None or fault.probability <= 0:
            return False
        if self.rng.random() < fault.probability:
            self.counters["cache_corrupted"] += 1
            return True
        return False

    def should_fail_arena(self) -> bool:
        fault = self.plan.arena
        if fault is None or fault.probability <= 0:
            return False
        if self.rng.random() < fault.probability:
            self.counters["arena_failed"] += 1
            return True
        return False

    # -- cluster (chip failures) -----------------------------------------------

    def chip_failure_times(self, chips: int,
                           horizon_seconds: float) -> np.ndarray:
        """Seeded exponential failure times (s) within the horizon."""
        fault = self.plan.chip
        if fault is None or chips <= 0:
            return np.empty(0, np.float64)
        rate = chips / (fault.mtbf_hours * 3600.0)
        times, t = [], 0.0
        while True:
            t += self.rng.exponential(1.0 / rate)
            if t >= horizon_seconds:
                break
            times.append(t)
        return np.asarray(times, np.float64)

    def stats(self) -> Dict[str, int]:
        return dict(self.counters)


_SYNC_COUNTER = {"drop": "dropped", "dup": "duplicated",
                 "reorder": "reordered"}

# -- process-global plan registration -----------------------------------------

_ACTIVE: Optional[FaultInjector] = None
# (spec string, injector) parsed from REPRO_FAULTS, cached per value.
_ENV_CACHE: tuple = (None, None)


def install_plan(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` as the process-wide active campaign."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan)
    return _ACTIVE


def clear_plan() -> None:
    """Remove the active campaign (environment plans are re-read)."""
    global _ACTIVE, _ENV_CACHE
    _ACTIVE = None
    _ENV_CACHE = (None, None)


def active_injector() -> Optional[FaultInjector]:
    """The active injector, or None when fault injection is off.

    A programmatically installed plan wins over ``REPRO_FAULTS``; the
    environment spec is parsed once per distinct value.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    spec = os.environ.get(_ENV)
    if not spec:
        return None
    global _ENV_CACHE
    cached_spec, cached = _ENV_CACHE
    if cached_spec != spec:
        cached = FaultInjector(parse_fault_spec(spec))
        _ENV_CACHE = (spec, cached)
    return cached


@contextmanager
def fault_scope(plan: FaultPlan) -> Iterator[FaultInjector]:
    """Context manager: install ``plan`` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    injector = install_plan(plan)
    try:
        yield injector
    finally:
        _ACTIVE = previous
