"""Wait-for-graph deadlock diagnostics for the multi-queue engine.

When a drain ends with instructions left (Figure 3's failure mode: a
``wait_flag`` whose ``set_flag`` never retires), the engine used to raise
an opaque "stalled pipe heads" string.  This module is the watchdog that
replaces it: from the stalled pipe heads and the set of still-pending
``set_flag`` instructions it reconstructs the *wait-for graph* over flag
channels and produces a structured :class:`DeadlockReport` that names

* the **never-set channel** — a wait whose producing set does not exist
  anywhere in the remaining program (a missing/dropped flag), with the
  consuming instruction index;
* or the **cycle** — pipes each waiting on a channel whose producer pipe
  is itself stalled (crossed waits), with both the consuming wait index
  and the emitting pending-set index per edge.

All three schedulers (object drain, arena drain, fixpoint oracle) feed
the same facts through :func:`build_report`, so the guilty channel is
named identically regardless of which scheduler hit the deadlock —
asserted by ``tests/core/test_deadlock_report.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa.channels import GEMM_CHANNELS, VECTOR_CHANNELS, unpack_channel
from ..isa.pipes import Pipe

__all__ = ["PipeStall", "DeadlockReport", "build_report", "channel_label"]


def channel_label(packed: int) -> str:
    """Human name for a packed channel: ``MTE2->MTE1 ev0 (L1 stage ready)``."""
    src, dst, event = unpack_channel(packed)
    base = f"{src}->{dst} ev{event}"
    known = GEMM_CHANNELS.get((src, dst, event)) \
        or VECTOR_CHANNELS.get((src, dst, event))
    return f"{base} ({known})" if known else base


@dataclass(frozen=True)
class PipeStall:
    """One stalled pipe head at deadlock time."""

    pipe: str                      # waiting pipe name
    index: int                     # program index of the stalled head
    kind: str                      # instruction class / opcode name
    channel: Optional[int] = None  # packed channel it waits on, if a wait
    producer_index: Optional[int] = None  # pending set's index, if any
    never_set: bool = False        # no pending set exists for the channel

    @property
    def channel_name(self) -> Optional[str]:
        return channel_label(self.channel) if self.channel is not None \
            else None


@dataclass(frozen=True)
class DeadlockReport:
    """Structured diagnosis of one engine deadlock."""

    stalls: Tuple[PipeStall, ...]
    cycle: Tuple[str, ...] = ()          # pipe names forming the wait cycle
    never_set: Tuple[int, ...] = ()      # packed channels nobody will set
    injected: bool = False               # a sync fault was injected this run

    @property
    def guilty_channels(self) -> Tuple[int, ...]:
        """The channels to blame: never-set first, else the cycle's."""
        if self.never_set:
            return self.never_set
        if self.cycle:
            members = set(self.cycle)
            return tuple(s.channel for s in self.stalls
                         if s.channel is not None and s.pipe in members)
        return tuple(s.channel for s in self.stalls
                     if s.channel is not None)

    @property
    def guilty_channel_names(self) -> Tuple[str, ...]:
        return tuple(channel_label(c) for c in self.guilty_channels)

    def describe(self) -> str:
        lines: List[str] = []
        for s in self.stalls:
            if s.channel is None:
                lines.append(f"pipe {s.pipe} stalled at #{s.index} {s.kind}")
            elif s.never_set:
                lines.append(
                    f"pipe {s.pipe} stalled at #{s.index} waiting on "
                    f"channel {s.channel_name}, which is never set "
                    f"(no pending set_flag remains)")
            else:
                lines.append(
                    f"pipe {s.pipe} stalled at #{s.index} waiting on "
                    f"channel {s.channel_name} whose set_flag "
                    f"#{s.producer_index} has not retired")
        head = "deadlock"
        if self.injected:
            head += " (injected sync fault)"
        if self.never_set:
            head += ": never-set channel " + ", ".join(
                channel_label(c) for c in self.never_set)
        elif self.cycle:
            head += ": wait-for cycle " + " -> ".join(
                self.cycle + (self.cycle[0],))
        return head + "\n  " + "\n  ".join(lines)


def build_report(stalls: Sequence[PipeStall],
                 injected: bool = False) -> DeadlockReport:
    """Assemble the wait-for graph and diagnose it.

    ``stalls`` carries one entry per stalled pipe head, with
    ``never_set``/``producer_index`` already resolved by the scheduler
    (each drain knows its own pending-set bookkeeping).  This function
    derives the graph-level facts: the never-set channel list and the
    wait-for cycle over pipes.
    """
    stalls = tuple(sorted(stalls, key=lambda s: (Pipe[s.pipe], s.index)))
    never = tuple(sorted({s.channel for s in stalls
                          if s.never_set and s.channel is not None}))

    # wait-for edges: the stalled pipe waits on the channel's src pipe.
    edges: Dict[str, str] = {}
    for s in stalls:
        if s.channel is not None and not s.never_set:
            src, _, _ = unpack_channel(s.channel)
            edges[s.pipe] = str(src)

    cycle: Tuple[str, ...] = ()
    for start in edges:
        seen: List[str] = []
        node: Optional[str] = start
        while node is not None and node not in seen:
            seen.append(node)
            node = edges.get(node)
        if node is not None:
            loop = seen[seen.index(node):]
            # canonical rotation so every scheduler reports the same cycle
            pivot = loop.index(min(loop, key=lambda p: int(Pipe[p])))
            cycle = tuple(loop[pivot:] + loop[:pivot])
            break

    return DeadlockReport(stalls=stalls, cycle=cycle, never_set=never,
                          injected=injected)
