"""Fault injection & RAS: deterministic fault models plus the machinery
that detects and recovers from what they inject.

The paper's one unified core scales from IoT parts to a 2048-chip
training cluster (§8) — a range that only works in production because
the deployed stack survives faults.  This package models the three
classes that dominate real deployments and wires their
detection/recovery into the rest of the simulator:

* **memory** — scratchpad bit flips filtered by a SECDED ECC model
  (:mod:`~repro.reliability.ecc`, hooked into ``memory/buffer.py``):
  single-bit corrected, double-bit detected and raised structurally;
* **synchronization** — dropped/duplicated/reordered flag ``set`` events
  and pipe stalls (hooked into both engine drains), diagnosed by the
  wait-for-graph watchdog (:mod:`~repro.reliability.deadlock`) that
  names the guilty channel instead of an opaque deadlock string;
* **cluster** — MTBF-driven chip failures with checkpoint/restart
  economics (:mod:`~repro.reliability.checkpoint`, used by
  ``cluster/training.py``) so scaling curves bend realistically.

Everything is off by default: with ``REPRO_FAULTS`` unset and no plan
installed, every hook is a single ``None`` check and all cycle counts,
traces, and functional outputs are byte-identical to a faultless build.
"""

from .checkpoint import (
    CheckpointPolicy,
    CheckpointedRun,
    cluster_mtbf_seconds,
    expected_runtime,
    optimal_checkpoint_interval,
)
from .deadlock import DeadlockReport, PipeStall, build_report, channel_label
from .faults import (
    ArenaFault,
    CacheFault,
    ChipFault,
    FaultPlan,
    MemBitFault,
    StallFault,
    SyncFault,
    parse_fault_spec,
)
from .chaos import (
    ChaosMonkey,
    ChaosPlan,
    CorruptChaos,
    HangChaos,
    KillChaos,
    active_chaos,
    chaos_scope,
    clear_chaos,
    install_chaos,
    parse_chaos_spec,
)
from .injector import (
    FaultInjector,
    active_injector,
    clear_plan,
    fault_scope,
    install_plan,
)

__all__ = [
    "FaultPlan",
    "MemBitFault",
    "SyncFault",
    "StallFault",
    "ChipFault",
    "CacheFault",
    "ArenaFault",
    "parse_fault_spec",
    "FaultInjector",
    "install_plan",
    "clear_plan",
    "active_injector",
    "fault_scope",
    "DeadlockReport",
    "PipeStall",
    "build_report",
    "channel_label",
    "CheckpointPolicy",
    "CheckpointedRun",
    "cluster_mtbf_seconds",
    "optimal_checkpoint_interval",
    "expected_runtime",
    "ChaosPlan",
    "KillChaos",
    "HangChaos",
    "CorruptChaos",
    "ChaosMonkey",
    "parse_chaos_spec",
    "install_chaos",
    "clear_chaos",
    "active_chaos",
    "chaos_scope",
]
