"""SECDED ECC model for the software-managed scratchpads.

Real DaVinci scratchpads (L0A/L0B/L0C, L1, UB) carry SECDED protection:
per 64-bit word, 8 check bits give single-error-correct /
double-error-detect.  The reproduction does not simulate the Hamming
syndrome arithmetic bit-for-bit — what matters architecturally is the
*outcome* contract, which this module models exactly:

* a **single-bit** flip is corrected in-line: the read returns the
  original data, and the correction is counted (``ecc_corrected``);
* a **double-bit** flip is detected but uncorrectable: the read raises a
  structured :class:`~repro.errors.EccError` naming the scratchpad
  (``ecc_detected``) — never silently wrong data;
* with ECC modeled *off* (``ecc=0`` in the fault spec), the flip lands
  in the returned bytes (``mem_corrupted``) — the unprotected-buffer
  baseline that shows why the paper's parts ship with ECC.

The hook lives in :meth:`repro.memory.buffer.Scratchpad.read` /
``read_bytes``: faults perturb the *returned copy*, never the backing
store, so a corrected or detected fault leaves the scratchpad state
exactly as an ECC scrub would.
"""

from __future__ import annotations

import numpy as np

from ..errors import EccError
from .faults import MemBitFault
from .injector import FaultInjector

__all__ = ["apply_memory_fault"]


def apply_memory_fault(injector: FaultInjector, fault: MemBitFault,
                       pad_name: str, data: np.ndarray) -> np.ndarray:
    """Resolve one injected bit-flip event against the SECDED model.

    ``data`` is the freshly read copy; returns the (possibly corrupted)
    array to hand to the caller.  Raises :class:`EccError` for
    uncorrectable double-bit flips when ECC is on.
    """
    if fault.ecc:
        if fault.bits == 1:
            injector.counters["ecc_corrected"] += 1
            return data  # corrected in-line: caller sees clean data
        injector.counters["ecc_detected"] += 1
        raise EccError(
            f"{pad_name}: uncorrectable {fault.bits}-bit memory error "
            f"(SECDED detected, cannot correct)",
            pad=pad_name, bits=fault.bits,
        )
    # ECC off: the flip really lands in the returned bytes.
    flat = np.ascontiguousarray(data)
    view = flat.reshape(-1).view(np.uint8)
    if view.size:
        for _ in range(fault.bits):
            byte = int(injector.rng.integers(view.size))
            bit = int(injector.rng.integers(8))
            view[byte] ^= np.uint8(1 << bit)
    injector.counters["mem_corrupted"] += 1
    return flat
