"""Host-side chaos harness for the sweep supervisor.

PR 4's fault injector perturbs the *simulated* hardware (bit flips,
dropped flags, slow pipes).  This module gives the same treatment to the
*host-side* execution harness: a :class:`ChaosPlan` makes sweep workers
die mid-job, hang past the supervisor's deadline, or hand back corrupted
payloads, so CI can prove that :mod:`repro.bench.supervisor` recovers a
faulted sweep to byte-identical results.

Spec grammar (``REPRO_CHAOS``; semicolon-separated clauses, the first
may set the seed — same shape as ``REPRO_FAULTS``)::

    REPRO_CHAOS="seed=7;kill:p=0.02"
    REPRO_CHAOS="hang:p=0.01,seconds=60"
    REPRO_CHAOS="seed=3;kill:p=0.02;hang:p=0.01;corrupt:p=0.02"

Kinds (defaults in parentheses):

=========  ==================================================================
kind       meaning
=========  ==================================================================
kill       the worker process ``os._exit``\\ s mid-job: ``p`` per attempt
           (0.0), ``code`` exit code (137)
hang       the job sleeps ``seconds`` (60) before doing any work — long
           enough to trip ``REPRO_SWEEP_TIMEOUT``: ``p`` per attempt (0.0)
corrupt    the job runs to completion but returns a
           :class:`ChaosCorruption` marker instead of its payload —
           the model of a torn IPC hand-back: ``p`` per attempt (0.0)
=========  ==================================================================

Determinism is the load-bearing property: every decision is a pure
function of ``(plan seed, job index, attempt number)`` — **not** of
which worker process happens to run the job or in what order jobs
complete.  A chaos campaign therefore injects the same faults at the
same (job, attempt) sites on every run, the supervisor's retries land on
fresh attempt numbers (so a killed job does not re-kill forever unless
the plan says so), and a failing campaign is replayable from its spec
string alone.

Bad specs raise :class:`~repro.errors.ConfigError` naming the variable —
same contract as every other ``REPRO_*`` knob.  With ``REPRO_CHAOS``
unset and no plan installed, :func:`active_chaos` is one dict probe
returning ``None`` and the sweep path is byte-identical to a build
without this module.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..errors import ConfigError

__all__ = [
    "KillChaos",
    "HangChaos",
    "CorruptChaos",
    "ChaosPlan",
    "ChaosCorruption",
    "ChaosMonkey",
    "parse_chaos_spec",
    "install_chaos",
    "clear_chaos",
    "active_chaos",
    "chaos_scope",
]

_ENV = "REPRO_CHAOS"

# Decision order — each kind consumes exactly one rng draw per attempt,
# in this order, so adding probability to one kind never re-seats the
# draws of another.
CHAOS_KINDS = ("kill", "hang", "corrupt")


@dataclass(frozen=True)
class KillChaos:
    """The worker process dies mid-job (``os._exit``) — a hard crash."""

    probability: float = 0.0  # per (job, attempt)
    exit_code: int = 137


@dataclass(frozen=True)
class HangChaos:
    """The job stalls: sleep ``seconds`` before touching any work.

    ``seconds`` should comfortably exceed ``REPRO_SWEEP_TIMEOUT`` so the
    supervisor's hung-worker detection (not the sleep expiring) is what
    recovers the job.  Without a timeout configured, a hung job
    eventually wakes up and completes — degraded, never deadlocked.
    """

    probability: float = 0.0  # per (job, attempt)
    seconds: float = 60.0


@dataclass(frozen=True)
class CorruptChaos:
    """The job completes but its returned payload is replaced with a
    :class:`ChaosCorruption` marker — a detectably-garbled hand-back."""

    probability: float = 0.0  # per (job, attempt)


@dataclass(frozen=True)
class ChaosPlan:
    """One seeded host-side chaos campaign."""

    seed: int = 0
    kill: Optional[KillChaos] = None
    hang: Optional[HangChaos] = None
    corrupt: Optional[CorruptChaos] = None

    def is_noop(self) -> bool:
        return all(f is None or f.probability <= 0
                   for f in (self.kill, self.hang, self.corrupt))


@dataclass(frozen=True)
class ChaosCorruption:
    """The payload a corrupt-chaos job hands back instead of its result.

    Module-level and picklable on purpose: it must cross the worker
    pool's IPC boundary like any real payload would.  The supervisor
    treats receiving one as a failed attempt (a corrupted payload that
    slipped past transport checksums), retries the job, and never lets
    the marker escape into caller-visible results.
    """

    job_index: int
    attempt: int


class ChaosMonkey:
    """Evaluates a :class:`ChaosPlan`, one decision per (job, attempt).

    Stateless between calls — the generator is re-derived per decision —
    so parent and workers, first runs and resumes, all agree on exactly
    which (job, attempt) pairs are faulted.
    """

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan

    def action(self, job_index: int, attempt: int) -> Optional[str]:
        """``kill``/``hang``/``corrupt`` for this attempt, or None."""
        if self.plan.is_noop():
            return None
        rng = np.random.default_rng(
            [self.plan.seed, int(job_index), int(attempt)])
        hit: Optional[str] = None
        for kind in CHAOS_KINDS:
            fault = getattr(self.plan, kind)
            draw = rng.random()  # always drawn: stable draw alignment
            if hit is None and fault is not None \
                    and fault.probability > 0 and draw < fault.probability:
                hit = kind
        return hit


# -- spec parsing --------------------------------------------------------------

def _bad(spec: str, why: str) -> ConfigError:
    return ConfigError(
        f"{_ENV}={spec!r}: {why}; accepted: semicolon-separated clauses "
        f"'seed=N' or 'kind:key=value,...' with kind in kill/hang/corrupt"
    )


def _clause_params(spec: str, body: str) -> dict:
    params = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise _bad(spec, f"malformed parameter {item!r}")
        key, value = item.split("=", 1)
        params[key.strip()] = value.strip()
    return params


def _pop_float(spec: str, params: dict, key: str, default: float,
               lo: float = 0.0, hi: float = float("inf")) -> float:
    raw = params.pop(key, None)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise _bad(spec, f"{key}={raw!r} is not a number") from None
    if not lo <= value <= hi:
        raise _bad(spec, f"{key}={raw!r} out of range [{lo}, {hi}]")
    return value


def parse_chaos_spec(spec: str) -> ChaosPlan:
    """Parse a ``REPRO_CHAOS`` spec string into a :class:`ChaosPlan`."""
    seed = 0
    kill = hang = corrupt = None
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[5:])
            except ValueError:
                raise _bad(spec, f"seed {clause[5:]!r} is not an integer") \
                    from None
            continue
        if ":" not in clause:
            raise _bad(spec, f"clause {clause!r} has no 'kind:' prefix")
        kind, body = clause.split(":", 1)
        kind = kind.strip()
        params = _clause_params(spec, body)
        if kind == "kill":
            code_raw = params.pop("code", "137")
            try:
                code = int(code_raw)
            except ValueError:
                raise _bad(spec, f"code={code_raw!r} is not an integer") \
                    from None
            if not 1 <= code <= 255:
                raise _bad(spec, f"code={code_raw!r} out of range [1, 255]")
            kill = KillChaos(
                probability=_pop_float(spec, params, "p", 0.0, hi=1.0),
                exit_code=code)
        elif kind == "hang":
            hang = HangChaos(
                probability=_pop_float(spec, params, "p", 0.0, hi=1.0),
                seconds=_pop_float(spec, params, "seconds", 60.0, lo=1e-3))
        elif kind == "corrupt":
            corrupt = CorruptChaos(
                probability=_pop_float(spec, params, "p", 0.0, hi=1.0))
        else:
            raise _bad(spec, f"unknown chaos kind {kind!r}")
        if params:
            raise _bad(spec, f"unknown {kind} parameter(s) "
                             f"{sorted(params)!r}")
    return ChaosPlan(seed=seed, kill=kill, hang=hang, corrupt=corrupt)


# -- process-global plan registration ------------------------------------------

_ACTIVE: Optional[ChaosMonkey] = None
# (spec string, monkey) parsed from REPRO_CHAOS, cached per value.
_ENV_CACHE: tuple = (None, None)


def install_chaos(plan: ChaosPlan) -> ChaosMonkey:
    """Install ``plan`` as the process-wide active chaos campaign.

    Fork-spawned sweep workers inherit the installed plan, so a
    programmatic campaign reaches the pool without touching the
    environment.
    """
    global _ACTIVE
    _ACTIVE = ChaosMonkey(plan)
    return _ACTIVE


def clear_chaos() -> None:
    """Remove the active campaign (environment plans are re-read)."""
    global _ACTIVE, _ENV_CACHE
    _ACTIVE = None
    _ENV_CACHE = (None, None)


def active_chaos() -> Optional[ChaosMonkey]:
    """The active chaos monkey, or None when chaos is off.

    A programmatically installed plan wins over ``REPRO_CHAOS``; the
    environment spec is parsed once per distinct value.
    """
    if _ACTIVE is not None:
        return _ACTIVE
    spec = os.environ.get(_ENV)
    if not spec:
        return None
    global _ENV_CACHE
    cached_spec, cached = _ENV_CACHE
    if cached_spec != spec:
        cached = ChaosMonkey(parse_chaos_spec(spec))
        _ENV_CACHE = (spec, cached)
    return cached


@contextmanager
def chaos_scope(plan: ChaosPlan) -> Iterator[ChaosMonkey]:
    """Context manager: install ``plan`` for the duration of the block."""
    global _ACTIVE
    previous = _ACTIVE
    monkey = install_chaos(plan)
    try:
        yield monkey
    finally:
        _ACTIVE = previous
