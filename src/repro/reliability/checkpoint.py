"""Checkpoint/restart modeling for cluster-scale training (Section 8).

A 2048-chip synchronous data-parallel job fails whenever *any* chip or
link fails, so the cluster-level MTBF shrinks linearly with scale:
``M_cluster = M_chip / chips``.  Production training survives this by
checkpointing every ``tau`` seconds of useful work (cost ``delta``) and,
on failure, restarting from the last checkpoint (cost ``R`` plus an
expected ``tau/2`` of lost recompute).

The expected wall-clock follows the standard first-order renewal model
(Young '74 / Daly '06):

* optimal interval      ``tau* = sqrt(2 * delta * M_cluster)``
* expected wall clock   ``T * (1 + delta/tau) / (1 - (tau/2 + R)/M)``

which is what bends the paper's near-linear scaling curves realistically
past ~1k chips: compute per chip keeps shrinking, but the failure rate
keeps growing, so the checkpoint overhead fraction rises with scale.
When the denominator goes non-positive the cluster fails faster than it
can recover — the run never finishes, reported as ``inf`` rather than an
exception so sweeps can plot the wall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError

__all__ = [
    "CheckpointPolicy",
    "CheckpointedRun",
    "cluster_mtbf_seconds",
    "optimal_checkpoint_interval",
    "expected_runtime",
]


@dataclass(frozen=True)
class CheckpointPolicy:
    """How a training job checkpoints and restarts."""

    checkpoint_seconds: float = 30.0   # delta: cost of writing one snapshot
    restart_seconds: float = 120.0     # R: detect + reschedule + reload
    interval_seconds: Optional[float] = None  # None = Young/Daly optimal

    def __post_init__(self) -> None:
        if self.checkpoint_seconds <= 0 or self.restart_seconds < 0:
            raise ConfigError(
                "checkpoint_seconds must be > 0 and restart_seconds >= 0")
        if self.interval_seconds is not None and self.interval_seconds <= 0:
            raise ConfigError("interval_seconds must be positive when set")


@dataclass(frozen=True)
class CheckpointedRun:
    """Expected cost of one failure-aware run."""

    compute_seconds: float       # failure-free useful work
    effective_seconds: float     # expected wall clock with failures (inf ok)
    interval_seconds: float      # checkpoint interval actually used
    cluster_mtbf_seconds: float
    expected_failures: float     # over the effective wall clock
    checkpoint_overhead_seconds: float  # time spent writing snapshots

    @property
    def overhead_factor(self) -> float:
        """effective / failure-free (1.0 = no robustness cost)."""
        if math.isinf(self.effective_seconds):
            return math.inf
        return self.effective_seconds / self.compute_seconds


def cluster_mtbf_seconds(mtbf_hours_per_chip: float, chips: int) -> float:
    """Cluster-level MTBF: any one of ``chips`` failing fails the step."""
    if mtbf_hours_per_chip <= 0 or chips <= 0:
        raise ConfigError("mtbf_hours_per_chip and chips must be positive")
    return mtbf_hours_per_chip * 3600.0 / chips


def optimal_checkpoint_interval(checkpoint_seconds: float,
                                mtbf_seconds: float) -> float:
    """Young's first-order optimum: ``sqrt(2 * delta * M)``."""
    return math.sqrt(2.0 * checkpoint_seconds * mtbf_seconds)


def expected_runtime(compute_seconds: float, mtbf_hours_per_chip: float,
                     chips: int,
                     policy: Optional[CheckpointPolicy] = None
                     ) -> CheckpointedRun:
    """Expected wall clock of ``compute_seconds`` of work with failures."""
    policy = policy or CheckpointPolicy()
    if compute_seconds < 0:
        raise ConfigError("compute_seconds must be non-negative")
    mtbf = cluster_mtbf_seconds(mtbf_hours_per_chip, chips)
    tau = policy.interval_seconds or optimal_checkpoint_interval(
        policy.checkpoint_seconds, mtbf)
    # Never checkpoint more than the job itself runs.
    tau = min(tau, compute_seconds) if compute_seconds > 0 else tau
    delta, restart = policy.checkpoint_seconds, policy.restart_seconds

    if compute_seconds == 0:
        return CheckpointedRun(0.0, 0.0, tau, mtbf, 0.0, 0.0)

    # Renewal model: wall = T(1 + delta/tau) + failures * (tau/2 + R),
    # failures = wall / M  =>  wall = T(1 + delta/tau) / (1 - (tau/2+R)/M).
    base = compute_seconds * (1.0 + delta / tau)
    loss_per_failure = tau / 2.0 + restart
    denom = 1.0 - loss_per_failure / mtbf
    if denom <= 0:
        return CheckpointedRun(compute_seconds, math.inf, tau, mtbf,
                               math.inf, compute_seconds * delta / tau)
    wall = base / denom
    return CheckpointedRun(
        compute_seconds=compute_seconds,
        effective_seconds=wall,
        interval_seconds=tau,
        cluster_mtbf_seconds=mtbf,
        expected_failures=wall / mtbf,
        checkpoint_overhead_seconds=compute_seconds * delta / tau,
    )
