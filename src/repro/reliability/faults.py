"""Fault models: what can break, how often, and how it is specified.

A :class:`FaultPlan` is the complete, immutable description of one
fault-injection campaign: a seed plus zero or more fault models per
subsystem.  Plans come from two places:

* programmatically — construct the dataclasses and pass the plan to
  :func:`~repro.reliability.injector.install_plan` (or the
  ``fault_scope`` context manager);
* the ``REPRO_FAULTS`` environment variable — a compact spec string
  parsed by :func:`parse_fault_spec`.

Spec grammar (semicolon-separated clauses; the first may set the seed)::

    REPRO_FAULTS="seed=42;membit:space=UB,p=1e-4,bits=1"
    REPRO_FAULTS="sync:action=drop,p=0.05"
    REPRO_FAULTS="stall:pipe=MTE2,factor=4,p=0.1;cache:p=1;arena:p=1"
    REPRO_FAULTS="chip:mtbf_hours=1000"

Each clause is ``kind:key=value,key=value``.  Kinds:

=========  ==================================================================
kind       meaning (defaults in parentheses)
=========  ==================================================================
membit     scratchpad bit flips: ``space`` (``*`` = any), ``p`` per read
           (0.0), ``bits`` 1 or 2 (1), ``ecc`` 0/1 (1 — SECDED on)
sync       flag-channel faults: ``action`` drop/dup/reorder, ``p`` per
           retired ``set_flag`` (0.0)
stall      pipe slowdowns: ``pipe`` name or ``*``, ``factor`` cost
           multiplier (2.0), ``p`` per instruction (0.0)
chip       cluster chip failures: ``mtbf_hours`` per chip (25000)
cache      compile-cache corruption: ``p`` per stored artifact (0.0)
arena      arena-lowering validation failure: ``p`` per lowering (0.0)
=========  ==================================================================

Everything is off when ``REPRO_FAULTS`` is unset and no plan is
installed; the hooks throughout the stack check for an active injector
before doing any work, so the default path stays byte-identical.

Bad spec strings raise :class:`~repro.errors.ConfigError` naming the
variable and the accepted grammar — same contract as every other
``REPRO_*`` knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ConfigError

__all__ = [
    "MemBitFault",
    "SyncFault",
    "StallFault",
    "ChipFault",
    "CacheFault",
    "ArenaFault",
    "FaultPlan",
    "parse_fault_spec",
    "SYNC_ACTIONS",
]

SYNC_ACTIONS = ("drop", "dup", "reorder")


@dataclass(frozen=True)
class MemBitFault:
    """Bit flips in a software-managed scratchpad, filtered by SECDED ECC.

    With ``ecc`` on (the default), single-bit flips are corrected
    transparently and double-bit flips raise a structured
    :class:`~repro.errors.EccError`.  With ``ecc`` off the flip silently
    corrupts the read data — the model of an unprotected buffer.
    """

    space: str = "*"          # scratchpad name (UB, L1, L0A, ...) or "*"
    probability: float = 0.0  # per read
    bits: int = 1             # 1 = correctable, 2 = detectable-uncorrectable
    ecc: bool = True

    def matches(self, pad_name: str) -> bool:
        return self.space == "*" or self.space == pad_name


@dataclass(frozen=True)
class SyncFault:
    """A dropped, duplicated, or reordered flag ``set`` event.

    ``channel`` restricts the fault to one packed flag channel (see
    :func:`~repro.isa.channels.pack_channel`); ``None`` targets any.
    """

    action: str = "drop"
    probability: float = 0.0  # per retired set_flag
    channel: Optional[int] = None

    def matches(self, packed_channel: int) -> bool:
        return self.channel is None or self.channel == packed_channel


@dataclass(frozen=True)
class StallFault:
    """A pipe running slow: selected instructions cost ``factor`` more."""

    pipe: str = "*"           # Pipe name or "*"
    factor: float = 2.0
    probability: float = 0.0  # per instruction


@dataclass(frozen=True)
class ChipFault:
    """Chip/link failures at cluster scale, exponential with this MTBF."""

    mtbf_hours: float = 25000.0


@dataclass(frozen=True)
class CacheFault:
    """Persistent compile-cache artifacts corrupted after being stored."""

    probability: float = 0.0  # per store


@dataclass(frozen=True)
class ArenaFault:
    """Arena lowering fails validation, forcing the object-path fallback."""

    probability: float = 0.0  # per lowering call


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault-injection campaign across all subsystems."""

    seed: int = 0
    memory: Tuple[MemBitFault, ...] = field(default_factory=tuple)
    sync: Tuple[SyncFault, ...] = field(default_factory=tuple)
    stall: Tuple[StallFault, ...] = field(default_factory=tuple)
    chip: Optional[ChipFault] = None
    cache: Optional[CacheFault] = None
    arena: Optional[ArenaFault] = None

    def is_noop(self) -> bool:
        """Whether this plan can never fire (all probabilities zero)."""
        return (
            all(f.probability == 0 for f in self.memory)
            and all(f.probability == 0 for f in self.sync)
            and all(f.probability == 0 for f in self.stall)
            and self.chip is None
            and (self.cache is None or self.cache.probability == 0)
            and (self.arena is None or self.arena.probability == 0)
        )


_ENV = "REPRO_FAULTS"


def _bad(spec: str, why: str) -> ConfigError:
    return ConfigError(
        f"{_ENV}={spec!r}: {why}; accepted: semicolon-separated clauses "
        f"'seed=N' or 'kind:key=value,...' with kind in "
        f"membit/sync/stall/chip/cache/arena"
    )


def _clause_params(spec: str, body: str) -> dict:
    params = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise _bad(spec, f"malformed parameter {item!r}")
        key, value = item.split("=", 1)
        params[key.strip()] = value.strip()
    return params


def _pop_float(spec: str, params: dict, key: str, default: float,
               lo: float = 0.0, hi: float = float("inf")) -> float:
    raw = params.pop(key, None)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise _bad(spec, f"{key}={raw!r} is not a number") from None
    if not lo <= value <= hi:
        raise _bad(spec, f"{key}={raw!r} out of range [{lo}, {hi}]")
    return value


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    seed = 0
    memory, sync, stall = [], [], []
    chip = cache = arena = None
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[5:])
            except ValueError:
                raise _bad(spec, f"seed {clause[5:]!r} is not an integer") \
                    from None
            continue
        if ":" not in clause:
            raise _bad(spec, f"clause {clause!r} has no 'kind:' prefix")
        kind, body = clause.split(":", 1)
        kind = kind.strip()
        params = _clause_params(spec, body)
        if kind == "membit":
            bits_raw = params.pop("bits", "1")
            if bits_raw not in ("1", "2"):
                raise _bad(spec, f"bits={bits_raw!r} must be 1 or 2")
            memory.append(MemBitFault(
                space=params.pop("space", "*"),
                probability=_pop_float(spec, params, "p", 0.0, hi=1.0),
                bits=int(bits_raw),
                ecc=params.pop("ecc", "1") != "0",
            ))
        elif kind == "sync":
            action = params.pop("action", "drop")
            if action not in SYNC_ACTIONS:
                raise _bad(spec, f"action={action!r} must be one of "
                                 f"{'/'.join(SYNC_ACTIONS)}")
            channel_raw = params.pop("channel", None)
            try:
                channel = int(channel_raw) if channel_raw is not None else None
            except ValueError:
                raise _bad(spec,
                           f"channel={channel_raw!r} is not an integer") \
                    from None
            sync.append(SyncFault(
                action=action,
                probability=_pop_float(spec, params, "p", 0.0, hi=1.0),
                channel=channel,
            ))
        elif kind == "stall":
            stall.append(StallFault(
                pipe=params.pop("pipe", "*"),
                factor=_pop_float(spec, params, "factor", 2.0, lo=1.0),
                probability=_pop_float(spec, params, "p", 0.0, hi=1.0),
            ))
        elif kind == "chip":
            chip = ChipFault(mtbf_hours=_pop_float(
                spec, params, "mtbf_hours", 25000.0, lo=1e-6))
        elif kind == "cache":
            cache = CacheFault(probability=_pop_float(
                spec, params, "p", 0.0, hi=1.0))
        elif kind == "arena":
            arena = ArenaFault(probability=_pop_float(
                spec, params, "p", 0.0, hi=1.0))
        else:
            raise _bad(spec, f"unknown fault kind {kind!r}")
        if params:
            raise _bad(spec, f"unknown {kind} parameter(s) "
                             f"{sorted(params)!r}")
    return FaultPlan(seed=seed, memory=tuple(memory), sync=tuple(sync),
                     stall=tuple(stall), chip=chip, cache=cache, arena=arena)
