"""ASCII Gantt rendering of execution traces — Figure 3 made visible.

One row per pipe, time flowing right; busy intervals are drawn with the
instruction class's letter (M cube, V vector, 1/2/3 the MTEs, s scalar).
Used by examples and handy when debugging synchronization in compiled
kernels.

Binning is columnar: intervals are clipped and painted per pipe with
difference-array coverage over the trace's numpy columns, so rendering a
million-event trace never materializes an event object.  Column edges
are computed in exact integer arithmetic — an event ending on a bin
boundary covers up to that boundary and no further, an event starting on
one begins exactly there, and zero-duration events (no occupied cycles)
paint nothing.  The float-scale version of this code could shift either
edge by one column when ``cycle * width / span`` landed within an ulp of
an integer, which double-painted or dropped boundary bins.

The per-row busy totals come from one :class:`~repro.profiling.counters.
PerfCounters` pass over the trace rather than per-pipe re-aggregation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.trace import KIND_NONE, ExecutionTrace
from ..isa.pipes import Pipe

__all__ = ["render_gantt"]

_GLYPH = {
    Pipe.M: "M",
    Pipe.V: "V",
    Pipe.MTE1: "1",
    Pipe.MTE2: "2",
    Pipe.MTE3: "3",
    Pipe.S: "s",
}


def render_gantt(trace: ExecutionTrace, width: int = 100,
                 window: Optional[tuple] = None) -> str:
    """Render per-pipe occupancy over (a window of) the trace.

    Flag bookkeeping (1-cycle events) is omitted; only payload
    instructions draw.  ``window`` is an optional (start, end) cycle
    range; default is the whole trace.
    """
    from ..profiling.counters import PerfCounters

    total = trace.total_cycles
    if total == 0:
        return "(empty trace)"
    lo, hi = window or (0, total)
    hi = min(hi, total)
    if hi <= lo:
        raise ValueError(f"bad window [{lo}, {hi})")
    span = int(hi - lo)
    lo = int(lo)

    starts = trace.starts
    ends = trace.ends
    pipes = trace.pipes
    # Half-open [start, end) vs half-open [lo, hi): an event ending at lo
    # or starting at hi is outside; a zero-duration event occupies no
    # cycles and never paints.
    visible = ((trace.kinds != KIND_NONE) & (ends > lo) & (starts < hi)
               & (ends > starts))
    start_clip = np.clip(starts, lo, hi) - lo
    end_clip = np.clip(ends, lo, hi) - lo
    # Exact integer binning over [0, span) -> [0, width): floor for the
    # leading edge, ceiling for the trailing edge, so a boundary-aligned
    # end never bleeds into the next column and interior events still
    # paint at least one column.
    start_col = start_clip * width // span
    end_col = np.maximum(start_col + 1, -((end_clip * width) // -span))

    counters = PerfCounters.from_trace(trace)
    lines = [f"cycles [{lo}, {hi})  ('{_GLYPH[Pipe.M]}'=cube, "
             f"'{_GLYPH[Pipe.V]}'=vector, '1/2/3'=MTE, 's'=scalar)"]
    for pipe in (Pipe.MTE2, Pipe.MTE1, Pipe.M, Pipe.V, Pipe.MTE3, Pipe.S):
        mask = visible & (pipes == int(pipe))
        covered = np.zeros(width, bool)
        if mask.any():
            # Difference-array coverage: +1 at each interval start, -1
            # past its end; a positive running sum marks a busy column.
            diff = np.zeros(width + 1, np.int64)
            np.add.at(diff, start_col[mask], 1)
            np.add.at(diff, end_col[mask], -1)
            covered = np.cumsum(diff[:width]) > 0
        body = "".join(_GLYPH[pipe] if c else " " for c in covered)
        if body.strip() or pipe is not Pipe.S:
            busy = counters.busy(pipe)
            lines.append(f"{pipe.name:>4} |{body}| {busy:,}")
    return "\n".join(lines)
