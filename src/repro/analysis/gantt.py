"""ASCII Gantt rendering of execution traces — Figure 3 made visible.

One row per pipe, time flowing right; busy intervals are drawn with the
instruction class's letter (M cube, V vector, 1/2/3 the MTEs, s scalar).
Used by examples and handy when debugging synchronization in compiled
kernels.

Binning is columnar: intervals are clipped and painted per pipe with
difference-array coverage over the trace's numpy columns, so rendering a
million-event trace never materializes an event object.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.trace import KIND_NONE, ExecutionTrace
from ..isa.pipes import Pipe

__all__ = ["render_gantt"]

_GLYPH = {
    Pipe.M: "M",
    Pipe.V: "V",
    Pipe.MTE1: "1",
    Pipe.MTE2: "2",
    Pipe.MTE3: "3",
    Pipe.S: "s",
}


def render_gantt(trace: ExecutionTrace, width: int = 100,
                 window: Optional[tuple] = None) -> str:
    """Render per-pipe occupancy over (a window of) the trace.

    Flag bookkeeping (1-cycle events) is omitted; only payload
    instructions draw.  ``window`` is an optional (start, end) cycle
    range; default is the whole trace.
    """
    total = trace.total_cycles
    if total == 0:
        return "(empty trace)"
    lo, hi = window or (0, total)
    hi = min(hi, total)
    if hi <= lo:
        raise ValueError(f"bad window [{lo}, {hi})")
    span = hi - lo
    scale = width / span

    starts = trace.starts
    ends = trace.ends
    pipes = trace.pipes
    visible = (trace.kinds != KIND_NONE) & (ends > lo) & (starts < hi)
    start_col = np.maximum(0, ((starts - lo) * scale).astype(np.int64))
    end_col = np.minimum(
        width, np.maximum(start_col + 1, ((ends - lo) * scale).astype(np.int64))
    )

    lines = [f"cycles [{lo}, {hi})  ('{_GLYPH[Pipe.M]}'=cube, "
             f"'{_GLYPH[Pipe.V]}'=vector, '1/2/3'=MTE, 's'=scalar)"]
    for pipe in (Pipe.MTE2, Pipe.MTE1, Pipe.M, Pipe.V, Pipe.MTE3, Pipe.S):
        mask = visible & (pipes == int(pipe))
        covered = np.zeros(width, bool)
        if mask.any():
            # Difference-array coverage: +1 at each interval start, -1
            # past its end; a positive running sum marks a busy column.
            diff = np.zeros(width + 1, np.int64)
            np.add.at(diff, start_col[mask], 1)
            np.add.at(diff, end_col[mask], -1)
            covered = np.cumsum(diff[:width]) > 0
        body = "".join(_GLYPH[pipe] if c else " " for c in covered)
        if body.strip() or pipe is not Pipe.S:
            busy = trace.busy_cycles(pipe)
            lines.append(f"{pipe.name:>4} |{body}| {busy:,}")
    return "\n".join(lines)
