"""ASCII Gantt rendering of execution traces — Figure 3 made visible.

One row per pipe, time flowing right; busy intervals are drawn with the
instruction class's letter (M cube, V vector, 1/2/3 the MTEs, s scalar).
Used by examples and handy when debugging synchronization in compiled
kernels.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.trace import ExecutionTrace
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    ScalarInstr,
    TransposeInstr,
    VectorInstr,
)
from ..isa.pipes import Pipe

__all__ = ["render_gantt"]

_GLYPH = {
    Pipe.M: "M",
    Pipe.V: "V",
    Pipe.MTE1: "1",
    Pipe.MTE2: "2",
    Pipe.MTE3: "3",
    Pipe.S: "s",
}
_PAYLOAD = (CubeMatmul, VectorInstr, CopyInstr, Img2ColInstr,
            TransposeInstr, DecompressInstr, ScalarInstr)


def render_gantt(trace: ExecutionTrace, width: int = 100,
                 window: Optional[tuple] = None) -> str:
    """Render per-pipe occupancy over (a window of) the trace.

    Flag bookkeeping (1-cycle events) is omitted; only payload
    instructions draw.  ``window`` is an optional (start, end) cycle
    range; default is the whole trace.
    """
    total = trace.total_cycles
    if total == 0:
        return "(empty trace)"
    lo, hi = window or (0, total)
    hi = min(hi, total)
    if hi <= lo:
        raise ValueError(f"bad window [{lo}, {hi})")
    span = hi - lo
    scale = width / span

    rows: Dict[Pipe, List[str]] = {p: [" "] * width for p in Pipe}
    for event in trace.events:
        if not isinstance(event.instr, _PAYLOAD):
            continue
        if event.end <= lo or event.start >= hi:
            continue
        start_col = max(0, int((event.start - lo) * scale))
        end_col = min(width, max(start_col + 1, int((event.end - lo) * scale)))
        glyph = _GLYPH[event.pipe]
        row = rows[event.pipe]
        for col in range(start_col, end_col):
            row[col] = glyph

    lines = [f"cycles [{lo}, {hi})  ('{_GLYPH[Pipe.M]}'=cube, "
             f"'{_GLYPH[Pipe.V]}'=vector, '1/2/3'=MTE, 's'=scalar)"]
    for pipe in (Pipe.MTE2, Pipe.MTE1, Pipe.M, Pipe.V, Pipe.MTE3, Pipe.S):
        body = "".join(rows[pipe])
        if body.strip() or pipe is not Pipe.S:
            busy = trace.busy_cycles(pipe)
            lines.append(f"{pipe.name:>4} |{body}| {busy:,}")
    return "\n".join(lines)
