"""The memory wall / I/O wall pyramid (Table 6).

Starting from the cube engines' demand bandwidth (256 TFLOPS of fp16
needs 2048 TB/s of operand feed at zero reuse), each level of the
hierarchy divides the requirement by its reuse factor; the table reports
expected bandwidth and the ratio to the cube demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config.soc_configs import ASCEND_910, SocConfig
from ..dtypes import FP16

__all__ = ["MemoryWallRow", "memory_wall_table"]


@dataclass(frozen=True)
class MemoryWallRow:
    """One level of the Table 6 pyramid."""

    level: str
    bandwidth_bytes_per_s: float
    ratio_to_cube: float

    @property
    def bandwidth_tb_s(self) -> float:
        return self.bandwidth_bytes_per_s / 1e12


def cube_demand_bandwidth(soc: SocConfig = ASCEND_910) -> float:
    """Zero-reuse operand demand of all cube engines.

    The paper charges 8 bytes of port traffic per FLOP (two operands plus
    fp32 partial-sum read/write amortized per MAC = 16 B / 2 FLOPs), so
    256 TFLOPS demands 2048 TB/s — Table 6's top row.
    """
    return soc.peak_ops(FP16) * 8


def memory_wall_table(soc: SocConfig = ASCEND_910,
                      intra_server_bw: float = 50e9,
                      inter_server_bw: float = 10e9) -> List[MemoryWallRow]:
    """Build the Table 6 rows for an SoC configuration."""
    cube = cube_demand_bandwidth(soc)
    l0 = cube  # L0 is sized to feed the cube at full rate
    # Each lower level relies on ~10x data reuse in the level above
    # (Section 4.1: "reduce the memory bandwidth by 10 times in each
    # lower layer").
    l1 = l0 / 10
    llc = l1 / 10
    hbm = soc.dram_bw
    rows = [
        MemoryWallRow("Cube Engine", cube, 1.0),
        MemoryWallRow("L0 Memory", l0, l0 / cube),
        MemoryWallRow("L1 Memory", l1, l1 / cube),
        MemoryWallRow("LLC Memory", llc, llc / cube),
        MemoryWallRow("HBM Memory", hbm, hbm / cube),
        MemoryWallRow("Intra AI Server (8 Chips)", intra_server_bw,
                      intra_server_bw / cube),
        MemoryWallRow("Inter AI Server", inter_server_bw,
                      inter_server_bw / cube),
    ]
    return rows
