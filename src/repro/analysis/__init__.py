"""Analysis harness reproducing the paper's profiling figures and tables."""

from .ratio import cube_vector_ratios, RatioPoint
from .l1_bandwidth import l1_bandwidth_profile, BandwidthPoint
from .memory_wall import memory_wall_table, MemoryWallRow
from .reporting import ascii_chart, ascii_table
from .gantt import render_gantt

__all__ = [
    "cube_vector_ratios",
    "RatioPoint",
    "l1_bandwidth_profile",
    "BandwidthPoint",
    "memory_wall_table",
    "MemoryWallRow",
    "ascii_chart",
    "ascii_table",
    "render_gantt",
]
