"""Analysis harness reproducing the paper's profiling figures and tables."""

from .ratio import cube_vector_ratios, ratio_points, RatioPoint
from .l1_bandwidth import bandwidth_points, l1_bandwidth_profile, BandwidthPoint
from .memory_wall import memory_wall_table, MemoryWallRow
from .reporting import ascii_chart, ascii_table
from .gantt import render_gantt

__all__ = [
    "cube_vector_ratios",
    "ratio_points",
    "RatioPoint",
    "l1_bandwidth_profile",
    "bandwidth_points",
    "BandwidthPoint",
    "memory_wall_table",
    "MemoryWallRow",
    "ascii_chart",
    "ascii_table",
    "render_gantt",
]
