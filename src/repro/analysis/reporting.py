"""Plain-text rendering of tables and line charts for the bench harness.

Every benchmark prints the same rows/series the paper reports; these
helpers keep that output uniform and diff-friendly.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

__all__ = ["ascii_table", "ascii_chart"]


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str = "") -> str:
    """Fixed-width table with a separator under the header row."""
    str_rows = [[_stringify(c) for c in row] for row in rows]
    table = [list(headers)] + str_rows
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(table):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def ascii_chart(series: Sequence[Tuple[str, float]], width: int = 50,
                title: str = "", log_scale: bool = False,
                marker_at: Optional[float] = None) -> str:
    """Horizontal bar chart: one labeled bar per point.

    ``marker_at`` draws a vertical reference line (e.g. ratio = 1 in the
    Figure 4-8 charts).
    """
    finite = [v for _, v in series if math.isfinite(v)]
    if not finite:
        return title
    top = max(max(finite), marker_at or 0.0)
    if log_scale:
        floor = min((v for v in finite if v > 0), default=1e-3)

        def scale(v: float) -> float:
            if v <= 0:
                return 0.0
            return (math.log10(v / floor) / math.log10(top / floor)
                    if top > floor else 1.0)
    else:

        def scale(v: float) -> float:
            return v / top if top else 0.0

    label_w = max(len(name) for name, _ in series)
    marker_col = int(scale(marker_at) * width) if marker_at else None
    lines = [title] if title else []
    for name, value in series:
        if not math.isfinite(value):
            bar = "#" * width + " inf"
        else:
            filled = int(round(scale(value) * width))
            bar = "#" * filled + " " * (width - filled)
            if marker_col is not None and 0 <= marker_col < width:
                marks = list(bar)
                if marks[marker_col] == " ":
                    marks[marker_col] = "|"
                bar = "".join(marks)
            bar = bar.rstrip() or "."
            bar = f"{bar} {value:.2f}"
        lines.append(f"{name.ljust(label_w)} {bar}")
    return "\n".join(lines)


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        magnitude = abs(cell)
        if magnitude and (magnitude >= 1e5 or magnitude < 1e-3):
            return f"{cell:.3g}"
        return f"{cell:.2f}".rstrip("0").rstrip(".")
    return str(cell)
