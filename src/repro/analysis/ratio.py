"""Cube/vector execution-time ratio profiles (Figures 4-8).

For every layer group of a model, compile it for a core design point and
report the ratio of cube busy cycles to vector busy cycles.  Ratios above
1 mean vector time hides under cube time — the resource-matching design
target of Section 2.4.

Points are read off :class:`~repro.profiling.counters.PerfCounters` —
the shared registry every figure consumes — whose per-pipe fields are
defined to equal the compiled layers' busy-cycle sums, so the published
numbers are unchanged by the indirection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..compiler.graph_engine import GraphEngine
from ..config.core_configs import CoreConfig
from ..graph import Graph
from ..graph.workload import OpWorkload
from ..isa.pipes import Pipe
from ..profiling.counters import PerfCounters, model_counters

__all__ = ["RatioPoint", "cube_vector_ratios", "ratio_points"]


@dataclass(frozen=True)
class RatioPoint:
    """One layer's point on a Figure 4-8 line chart."""

    layer: str
    ratio: float
    cube_cycles: int
    vector_cycles: int

    @property
    def vector_hidden(self) -> bool:
        """True when vector time fully hides under cube time."""
        return self.ratio >= 1.0


def cube_vector_ratios(
    graph: Graph,
    config: CoreConfig,
    workloads: Optional[Sequence[Tuple[str, OpWorkload]]] = None,
    engine: Optional[GraphEngine] = None,
) -> List[RatioPoint]:
    """Per-layer cube/vector busy-cycle ratios for a model on a core.

    Pass ``workloads`` from :func:`repro.models.training.training_workloads`
    to profile the training variant (Figure 5).
    """
    engine = engine or GraphEngine(config)
    compiled = engine.compile_graph(graph, workloads=workloads)
    return ratio_points(model_counters(compiled))


def ratio_points(
    named_counters: Sequence[Tuple[str, PerfCounters]],
) -> List[RatioPoint]:
    """Figure 4-8 points from any ``(layer, counters)`` series."""
    return [
        RatioPoint(
            layer=name,
            ratio=counters.cube_vector_ratio,
            cube_cycles=counters.busy(Pipe.M),
            vector_cycles=counters.busy(Pipe.V),
        )
        for name, counters in named_counters
    ]
