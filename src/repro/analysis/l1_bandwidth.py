"""L1 bandwidth demand profiling (Figure 9).

Per layer: bytes read from / written to the L1 buffer divided by the
layer's cycles, in bits/cycle — the quantity the paper profiles on an
unlimited-bandwidth configuration to size the Table 5 buses.  The claims
to reproduce: reads stay under 4096 bits/cycle, writes under 2048, and
MobileNet demands more relative bandwidth than the bigger nets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..compiler.graph_engine import GraphEngine
from ..config.core_configs import CoreConfig
from ..graph import Graph
from ..graph.workload import OpWorkload
from ..profiling.counters import PerfCounters, model_counters

__all__ = ["BandwidthPoint", "l1_bandwidth_profile", "bandwidth_points"]


@dataclass(frozen=True)
class BandwidthPoint:
    """One layer's L1 read/write demand."""

    layer: str
    read_bits_per_cycle: float
    write_bits_per_cycle: float
    cycles: int


def l1_bandwidth_profile(
    graph: Graph,
    config: CoreConfig,
    workloads: Optional[Sequence[Tuple[str, OpWorkload]]] = None,
    engine: Optional[GraphEngine] = None,
) -> List[BandwidthPoint]:
    """Per-layer L1 bandwidth demand for a model on a core design point."""
    engine = engine or GraphEngine(config)
    compiled = engine.compile_graph(graph, workloads=workloads)
    return bandwidth_points(model_counters(compiled))


def bandwidth_points(
    named_counters: Sequence[Tuple[str, PerfCounters]],
) -> List[BandwidthPoint]:
    """Figure 9 points from any ``(layer, counters)`` series.

    The bits-per-cycle properties live on the counter registry, so the
    same numbers drive this figure, the roofline attribution, and the
    profiling CLI.
    """
    return [
        BandwidthPoint(
            layer=name,
            read_bits_per_cycle=counters.l1_read_bits_per_cycle,
            write_bits_per_cycle=counters.l1_write_bits_per_cycle,
            cycles=counters.total_cycles,
        )
        for name, counters in named_counters
    ]
